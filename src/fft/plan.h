// FFT plan cache.
//
// A FftPlan holds everything about a 1-D transform of length n that does not
// depend on the data: the bit-reversal permutation and per-stage twiddle
// tables for the radix-2 path, and — for non-power-of-two lengths — the
// Bluestein chirp together with the FFT of the (zero-padded) chirp kernel in
// both directions, so the runtime convolution needs two sub-FFTs instead of
// the three the planless kernel performed.
//
// Plans are immutable after construction and live forever in a process-wide
// registry guarded by a mutex, so parallel_for workers batching over planes
// share one plan per length instead of re-deriving tables per call. Lookup
// cost on the hot path is one mutex acquisition per transform length per
// slice; callers that transform many lines of the same length hoist the
// lookup out of the loop.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace litho::fft {

class FftPlan {
 public:
  /// Builds tables for length @p n (n >= 1). Non-power-of-two lengths
  /// recursively obtain the radix-2 plan for the Bluestein padded length
  /// from the registry.
  explicit FftPlan(size_t n);

  size_t length() const { return n_; }
  bool is_radix2() const { return pow2_; }

  /// Complex doubles of scratch the Bluestein path needs per concurrent
  /// execute(); zero for radix-2 plans (they run fully in place).
  size_t workspace_size() const { return pow2_ ? 0 : m_; }

  /// In-place unnormalized transform of data[0..n). @p inverse conjugates
  /// twiddles but does NOT apply 1/n (norm="backward" forward convention).
  /// @p work must point at workspace_size() writable complex doubles (may be
  /// null for radix-2 plans). Thread-safe: the plan is read-only.
  void execute(std::complex<double>* data, bool inverse,
               std::complex<double>* work = nullptr) const;

 private:
  void radix2(std::complex<double>* a, bool inverse) const;
  void bluestein(std::complex<double>* a, bool inverse,
                 std::complex<double>* work) const;

  size_t n_;
  bool pow2_;

  // Radix-2 tables: bitrev_[i] is the bit-reversed index of i; twiddles_
  // stores, for each stage len = 2, 4, ..., n, the len/2 forward roots
  // exp(-2*pi*i*j/len) at offset len/2 - 1 (n - 1 entries total). The
  // inverse transform conjugates at use.
  std::vector<uint32_t> bitrev_;
  std::vector<std::complex<double>> twiddles_;

  // Bluestein tables (empty for radix-2 lengths). chirp_ holds the forward
  // chirp exp(-i*pi*k^2/n); the inverse chirp is its conjugate.
  // kernel_fft_fwd_/inv_ are the length-m_ FFTs of the padded chirp kernel
  // b[k] = conj(chirp[k]) (resp. chirp[k]) — precomputing them removes one
  // of the three sub-FFTs from every Bluestein execution.
  size_t m_ = 0;  // next_pow2(2n - 1)
  std::vector<std::complex<double>> chirp_;
  std::vector<std::complex<double>> kernel_fft_fwd_;
  std::vector<std::complex<double>> kernel_fft_inv_;
  const FftPlan* sub_ = nullptr;  // registry-owned radix-2 plan for m_
};

/// Registry lookup: returns the (immutable, never-destroyed) plan for
/// length @p n, constructing it on first use. Thread-safe; concurrent
/// first-use races construct at most one surviving plan.
const FftPlan& plan_for(size_t n);

/// Number of plans currently cached (test/diagnostic hook).
size_t plan_cache_size();

}  // namespace litho::fft
