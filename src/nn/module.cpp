#include "nn/module.h"

#include <stdexcept>

namespace litho::nn {

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    const auto sub = child->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const ag::Variable& p : parameters()) n += p.value().numel();
  return n;
}

std::map<std::string, Tensor> Module::state_dict() const {
  std::map<std::string, Tensor> out;
  collect("", out);
  return out;
}

void Module::collect(const std::string& prefix,
                     std::map<std::string, Tensor>& out) const {
  for (const auto& [name, p] : params_) out.emplace(prefix + name, p.value());
  for (const auto& [name, b] : buffers_) out.emplace(prefix + name, *b);
  for (const auto& [name, child] : children_) {
    child->collect(prefix + name + ".", out);
  }
}

void Module::load_state_dict(const std::map<std::string, Tensor>& dict) {
  load("", dict);
}

void Module::load(const std::string& prefix,
                  const std::map<std::string, Tensor>& dict) {
  auto fetch = [&](const std::string& key, Tensor& into) {
    const auto it = dict.find(key);
    if (it == dict.end()) {
      throw std::runtime_error("state_dict missing key: " + key);
    }
    if (!it->second.same_shape(into)) {
      throw std::runtime_error("state_dict shape mismatch for " + key + ": " +
                               shape_to_string(it->second.shape()) + " vs " +
                               shape_to_string(into.shape()));
    }
    std::copy(it->second.data(), it->second.data() + it->second.numel(),
              into.data());
  };
  for (auto& [name, p] : params_) fetch(prefix + name, p.mutable_value());
  for (auto& [name, b] : buffers_) fetch(prefix + name, *b);
  for (auto& [name, child] : children_) child->load(prefix + name + ".", dict);
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::prepack_forward(litho::Precision precision) {
  for (auto& [name, child] : children_) child->prepack_forward(precision);
}

void Module::prepack_forward_choose(const PrepackChooser& chooser) {
  for (auto& [name, child] : children_) child->prepack_forward_choose(chooser);
}

void Module::zero_grad() {
  for (ag::Variable& p : parameters()) p.zero_grad();
}

ag::Variable Module::register_parameter(const std::string& name, Tensor init) {
  ag::Variable v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

Tensor& Module::register_buffer(const std::string& name, Tensor init) {
  buffers_.emplace_back(name, std::make_unique<Tensor>(std::move(init)));
  return *buffers_.back().second;
}

void Module::register_module(const std::string& name, Module* child) {
  if (child == nullptr) throw std::invalid_argument("null submodule");
  children_.emplace_back(name, child);
}

}  // namespace litho::nn
