// Optimizers matching the paper's training configuration (Table 8):
// Adam with weight decay 1e-4, initial LR 2e-3, step decay x0.5 every
// 2 epochs.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace litho::nn {

/// Adam optimizer (Kingma & Ba) with optional decoupled-style L2 weight
/// decay added to the gradient (PyTorch `Adam(weight_decay=...)` semantics).
class Adam {
 public:
  Adam(std::vector<ag::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);

  /// Applies one update from the currently accumulated gradients.
  void step();

  /// Zeroes gradients of all managed parameters.
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t step_count() const { return t_; }

 private:
  std::vector<ag::Variable> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
};

/// Plain SGD with momentum and L2 weight decay; provided as the simple
/// baseline optimizer (Adam is the paper's choice, Table 8).
class Sgd {
 public:
  Sgd(std::vector<ag::Variable> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.f);

  void step();
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<ag::Variable> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
  float weight_decay_;
};

/// Multiplies the optimizer LR by gamma every step_size epochs
/// (call step() once per epoch).
class StepLR {
 public:
  StepLR(Adam& optimizer, int64_t step_size, float gamma);

  void step();
  int64_t epoch() const { return epoch_; }

 private:
  Adam& optimizer_;
  int64_t step_size_;
  float gamma_;
  int64_t epoch_ = 0;
};

}  // namespace litho::nn
