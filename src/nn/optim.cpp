#include "nn/optim.h"

#include <cmath>

namespace litho::nn {

Adam::Adam(std::vector<ag::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    m_.push_back(Tensor::zeros(p.value().shape()));
    v_.push_back(Tensor::zeros(p.value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    const Tensor& g = p.grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    float* pv = p.mutable_value().data();
    const int64_t n = p.value().numel();
    for (int64_t j = 0; j < n; ++j) {
      float gj = g[j] + weight_decay_ * pv[j];
      m[j] = beta1_ * m[j] + (1.f - beta1_) * gj;
      v[j] = beta2_ * v[j] + (1.f - beta2_) * gj * gj;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      pv[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (ag::Variable& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<ag::Variable> params, float lr, float momentum,
         float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    velocity_.push_back(Tensor::zeros(p.value().shape()));
  }
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    const Tensor& g = p.grad();
    Tensor& v = velocity_[i];
    float* pv = p.mutable_value().data();
    const int64_t n = p.value().numel();
    for (int64_t j = 0; j < n; ++j) {
      const float gj = g[j] + weight_decay_ * pv[j];
      v[j] = momentum_ * v[j] + gj;
      pv[j] -= lr_ * v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (ag::Variable& p : params_) p.zero_grad();
}

StepLR::StepLR(Adam& optimizer, int64_t step_size, float gamma)
    : optimizer_(optimizer), step_size_(step_size), gamma_(gamma) {}

void StepLR::step() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    optimizer_.set_lr(optimizer_.lr() * gamma_);
  }
}

}  // namespace litho::nn
