// Module system: named parameters, buffers, submodules, train/eval mode,
// state_dict save/load. Submodules are plain members of the derived class
// registered by pointer (the parent owns them by composition), mirroring how
// the DOINN/UNet/DAMO models are assembled.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace litho {
enum class Precision;  // tensor/prepack.h
}

namespace litho::nn {

/// Base class for neural network modules.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first over submodules.
  std::vector<ag::Variable> parameters() const;

  /// Total trainable element count.
  int64_t num_parameters() const;

  /// Flattened name -> tensor map of parameters and buffers, with dotted
  /// submodule prefixes ("lp.conv1.weight").
  std::map<std::string, Tensor> state_dict() const;

  /// Loads values (copies into existing parameter/buffer storage). Missing
  /// or shape-mismatched entries throw std::runtime_error.
  void load_state_dict(const std::map<std::string, Tensor>& dict);

  /// Sets training mode (affects BatchNorm) on this module and children.
  void set_training(bool training);
  bool training() const { return training_; }

  /// Packs forward-pass weights into the GEMM engine's panel layout (at the
  /// given precision) for inference, recursing into children. Layers with a
  /// packable forward (Conv2d, ConvTranspose2d) override this; the packed
  /// panels are consulted only while gradients are disabled, so training
  /// paths never see them. Call again after mutating weights — packs are
  /// snapshots, not views.
  virtual void prepack_forward(litho::Precision precision);

  /// Per-layer storage-precision decision for prepack_forward: called once
  /// per packable layer with its packed GEMM extents (@p transposed marks
  /// ConvTranspose2d, @p m / @p k the logical extents after transposition)
  /// and must return the precision to pack that layer at. The graph
  /// executor's autotuner supplies a chooser backed by per-shape fp32 vs
  /// int8 benchmarks (runtime::tuned_conv_precision), so an int8 engine can
  /// keep shapes where quantization doesn't pay in fp32.
  using PrepackChooser =
      std::function<litho::Precision(bool transposed, int64_t m, int64_t k)>;
  virtual void prepack_forward_choose(const PrepackChooser& chooser);

  /// Zeroes gradients of all parameters.
  void zero_grad();

 protected:
  /// Registers and returns a trainable parameter initialized to @p init.
  ag::Variable register_parameter(const std::string& name, Tensor init);

  /// Registers a non-trainable buffer (e.g. BatchNorm running stats);
  /// returned reference stays valid for the module's lifetime.
  Tensor& register_buffer(const std::string& name, Tensor init);

  /// Registers a submodule held by the derived class.
  void register_module(const std::string& name, Module* child);

 private:
  void collect(const std::string& prefix,
               std::map<std::string, Tensor>& out) const;
  void load(const std::string& prefix,
            const std::map<std::string, Tensor>& dict);

  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, std::unique_ptr<Tensor>>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace litho::nn
