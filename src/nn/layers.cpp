#include "nn/layers.h"

#include <cmath>
#include <memory>

#include "autograd/grad_mode.h"
#include "tensor/prepack.h"

namespace litho::nn {
namespace {

Tensor kaiming_uniform(Shape shape, int64_t fan_in, std::mt19937& rng) {
  const float bound = 1.f / std::sqrt(static_cast<float>(fan_in));
  return Tensor::rand(std::move(shape), rng, -bound, bound);
}

}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, std::mt19937& rng, bool bias)
    : stride_(stride), padding_(padding) {
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = register_parameter(
      "weight",
      kaiming_uniform({out_channels, in_channels, kernel, kernel}, fan_in, rng));
  if (bias) {
    bias_ = register_parameter("bias",
                               kaiming_uniform({out_channels}, fan_in, rng));
  } else {
    bias_ = ag::Variable();
  }
}

ag::Variable Conv2d::forward(const ag::Variable& x) const {
  if (prepack_ && !ag::GradMode::is_enabled()) {
    return ag::conv2d_prepacked(x, weight_, prepack_, bias_, stride_,
                                padding_);
  }
  return ag::conv2d(x, weight_, bias_, stride_, padding_);
}

void Conv2d::prepack_forward(Precision precision) {
  const Tensor& w = weight_.value();
  const int64_t cout = w.size(0);
  const int64_t ckk = w.numel() / cout;
  prepack_ = std::make_shared<const PackedWeight>(GemmLayout::kNN, w.data(),
                                                  cout, ckk, precision);
}

void Conv2d::prepack_forward_choose(const PrepackChooser& chooser) {
  const Tensor& w = weight_.value();
  const int64_t cout = w.size(0);
  prepack_forward(chooser(false, cout, w.numel() / cout));
}

ConvTranspose2d::ConvTranspose2d(int64_t in_channels, int64_t out_channels,
                                 int64_t kernel, int64_t stride,
                                 int64_t padding, std::mt19937& rng, bool bias)
    : stride_(stride), padding_(padding) {
  const int64_t fan_in = out_channels * kernel * kernel;
  weight_ = register_parameter(
      "weight",
      kaiming_uniform({in_channels, out_channels, kernel, kernel}, fan_in, rng));
  if (bias) {
    bias_ = register_parameter("bias",
                               kaiming_uniform({out_channels}, fan_in, rng));
  } else {
    bias_ = ag::Variable();
  }
}

ag::Variable ConvTranspose2d::forward(const ag::Variable& x) const {
  if (prepack_ && !ag::GradMode::is_enabled()) {
    return ag::conv_transpose2d_prepacked(x, weight_, prepack_, bias_,
                                          stride_, padding_);
  }
  return ag::conv_transpose2d(x, weight_, bias_, stride_, padding_);
}

void ConvTranspose2d::prepack_forward(Precision precision) {
  // Forward consumes the weight as wᵀ (CoutKK x Cin through the TN layout),
  // exactly like the per-call PackedA in ag::conv_transpose2d.
  const Tensor& w = weight_.value();
  const int64_t cin = w.size(0);
  const int64_t ckk = w.numel() / cin;
  prepack_ = std::make_shared<const PackedWeight>(GemmLayout::kTN, w.data(),
                                                  ckk, cin, precision);
}

void ConvTranspose2d::prepack_forward_choose(const PrepackChooser& chooser) {
  const Tensor& w = weight_.value();
  const int64_t cin = w.size(0);
  prepack_forward(chooser(true, w.numel() / cin, cin));
}

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("weight", Tensor::ones({channels}));
  beta_ = register_parameter("bias", Tensor::zeros({channels}));
  running_mean_ = &register_buffer("running_mean", Tensor::zeros({channels}));
  running_var_ = &register_buffer("running_var", Tensor::ones({channels}));
}

ag::Variable BatchNorm2d::forward(const ag::Variable& x) {
  return ag::batch_norm2d(x, gamma_, beta_, *running_mean_, *running_var_,
                          training(), momentum_, eps_);
}

VggBlock::VggBlock(int64_t in_channels, int64_t out_channels, std::mt19937& rng)
    : conv1_(in_channels, out_channels, 3, 1, 1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      bn2_(out_channels) {
  register_module("conv1", &conv1_);
  register_module("bn1", &bn1_);
  register_module("conv2", &conv2_);
  register_module("bn2", &bn2_);
}

ag::Variable VggBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::leaky_relu(bn1_.forward(conv1_.forward(x)), 0.2f);
  return ag::leaky_relu(bn2_.forward(conv2_.forward(h)), 0.2f);
}

}  // namespace litho::nn
