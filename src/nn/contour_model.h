// Common interface for image-to-contour models (DOINN and the baselines it
// is compared against). Input is an [N,1,H,W] mask raster in [0,1]; output
// is an [N,1,H,W] map in [-1,1] (tanh) whose sign gives the predicted resist
// contour.
#pragma once

#include "nn/module.h"

namespace litho::nn {

class ContourModel : public Module {
 public:
  virtual ag::Variable forward(const ag::Variable& x) = 0;

  /// Short display name used by the benchmark harness ("UNet", "DAMO-DLS",
  /// "DOINN", ...).
  virtual std::string name() const = 0;
};

}  // namespace litho::nn
