// Standard layers used by DOINN and the baseline models.
//
// Initialization follows PyTorch defaults (Kaiming-uniform bound
// 1/sqrt(fan_in)) so the training configurations of the paper's Table 8
// transfer directly.
#pragma once

#include "autograd/ops.h"
#include "nn/module.h"

namespace litho::nn {

/// 2-D convolution layer.
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, std::mt19937& rng, bool bias = true);

  ag::Variable forward(const ag::Variable& x) const;

  /// Packs the weight into the GEMM panel layout; forward() uses the pack
  /// whenever gradients are disabled.
  void prepack_forward(litho::Precision precision) override;
  void prepack_forward_choose(const PrepackChooser& chooser) override;

  int64_t stride() const { return stride_; }
  int64_t padding() const { return padding_; }

 private:
  ag::Variable weight_;
  ag::Variable bias_;
  std::shared_ptr<const litho::PackedWeight> prepack_;
  int64_t stride_;
  int64_t padding_;
};

/// 2-D transposed convolution layer.
class ConvTranspose2d : public Module {
 public:
  ConvTranspose2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
                  int64_t stride, int64_t padding, std::mt19937& rng,
                  bool bias = true);

  ag::Variable forward(const ag::Variable& x) const;

  void prepack_forward(litho::Precision precision) override;
  void prepack_forward_choose(const PrepackChooser& chooser) override;

 private:
  ag::Variable weight_;
  ag::Variable bias_;
  std::shared_ptr<const litho::PackedWeight> prepack_;
  int64_t stride_;
  int64_t padding_;
};

/// Batch normalization over 4-D activations.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  ag::Variable forward(const ag::Variable& x);

 private:
  ag::Variable gamma_;
  ag::Variable beta_;
  Tensor* running_mean_;
  Tensor* running_var_;
  float momentum_;
  float eps_;
};

/// The paper's "vgg" block: two identical 3x3 same-padding convolutions,
/// each followed by BatchNorm and LeakyReLU(0.2) (appendix A.1.2).
class VggBlock : public Module {
 public:
  VggBlock(int64_t in_channels, int64_t out_channels, std::mt19937& rng);

  ag::Variable forward(const ag::Variable& x);

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
};

}  // namespace litho::nn
