// Printability check: the DFM flow the paper's introduction motivates.
//
// A routed block is usually far bigger than a training tile. This example
// takes a ~67 um^2 via region (4x the training tile side), predicts its
// wafer contour with the large-tile DOINN scheme, and flags printability
// hotspots: design vias whose predicted printed area deviates from nominal.
// The golden engine then verifies the flagged sites.
//
// Uses the shared experiment cache (data/cache); the first run trains the
// DOINN on the ISPD-2019 stand-in (~1 min), later runs load weights.
#include <cstdio>
#include <vector>

#include "core/experiments.h"
#include "core/hotspot.h"
#include "core/large_tile.h"
#include "io/io.h"

using namespace litho;

int main() {
  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  auto model_base = core::trained_model("DOINN", bench);
  auto* doinn = dynamic_cast<core::Doinn*>(model_base.get());
  core::LargeTilePredictor lt(*doinn);

  const auto& sim = core::simulator_for(bench.pixel_nm());
  const int64_t large = 4 * bench.tile_px();
  // A via region matching the model's training distribution; OPC'ed as in
  // production handoff.
  Tensor mask = core::generate_mask(sim, core::DatasetKind::kViaSparse, large,
                                    31337, /*opc_iterations=*/4);

  std::printf("predicting %lld x %lld px (%.0f x %.0f nm) region...\n",
              static_cast<long long>(large), static_cast<long long>(large),
              large * bench.pixel_nm(), large * bench.pixel_nm());
  Tensor contour = lt.predict(mask);
  contour.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });

  // Hotspot scan: windows whose predicted printed area deviates from the
  // design area (core::find_hotspots, sorted by severity).
  core::HotspotParams params;
  params.window_px = 12;  // ~2 via pitches
  const auto hotspots = core::find_hotspots(mask, contour, params);
  std::printf("flagged %zu candidate hotspots\n", hotspots.size());

  // Verify the flagged sites (only!) with the golden engine — this is where
  // the 2-orders-of-magnitude simulation speedup pays off: the rigorous
  // engine only ever sees the suspicious windows.
  Tensor golden = sim.simulate(mask);
  int64_t confirmed = 0;
  const int64_t win = params.window_px;
  for (const core::Hotspot& h : hotspots) {
    double design_px = 0, gp = 0;
    for (int64_t dr = 0; dr < win; ++dr) {
      for (int64_t dc = 0; dc < win; ++dc) {
        design_px += mask[(h.row_px + dr) * large + h.col_px + dc];
        gp += golden[(h.row_px + dr) * large + h.col_px + dc];
      }
    }
    const double ratio = gp / design_px;
    if (ratio < params.under_ratio || ratio > params.over_ratio) ++confirmed;
  }
  std::printf("golden engine confirms %lld / %zu\n",
              static_cast<long long>(confirmed), hotspots.size());

  const auto m = core::evaluate_contours(contour, golden);
  std::printf("full-region contour accuracy: mPA %.2f%%  mIOU %.2f%%\n",
              100 * m.mpa, 100 * m.miou);

  io::ensure_dir("data/printability");
  io::write_pgm("data/printability/mask.pgm", mask);
  io::write_pgm("data/printability/predicted.pgm", contour);
  io::write_pgm("data/printability/golden.pgm", golden);
  std::printf("wrote data/printability/*.pgm\n");
  return 0;
}
