// Process-window exploration (extension / future-work direction of the
// paper: "bringing more accurate physical lithography models").
//
// The golden SOCS engine supports defocus aberrations. This example sweeps
// defocus, simulates the same OPC'ed via clip at each condition, and
// reports the printed-area variation — the classic Bossung-style process
// window analysis — then checks how a DOINN trained at nominal focus
// degrades across the window (a measure of how far one learned model can
// be trusted away from its training condition).
#include <cstdio>

#include "core/experiments.h"
#include "io/io.h"
#include "litho/cd.h"

using namespace litho;

int main() {
  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  auto doinn = core::trained_model("DOINN", bench);

  const auto& nominal = core::simulator_for(bench.pixel_nm());
  Tensor mask = core::generate_mask(nominal, core::DatasetKind::kViaSparse,
                                    bench.tile_px(), 2026,
                                    /*opc_iterations=*/4);
  const Tensor pred = core::predict_contour(*doinn, mask);

  std::printf("%12s %14s %18s\n", "defocus(nm)", "printed px",
              "DOINN mIOU vs cond.");
  io::ensure_dir("data/process_window");
  for (const double defocus : {-80.0, -40.0, 0.0, 40.0, 80.0}) {
    optics::OpticalConfig cfg = nominal.config();
    cfg.defocus_nm = defocus;
    optics::LithoSimulator sim(cfg, optics::compute_socs_kernels(cfg));
    const Tensor golden = sim.simulate(mask);
    const double miou = core::evaluate_contours(pred, golden).miou;
    std::printf("%12.0f %14.0f %18.4f\n", defocus, golden.sum(), miou);
    io::write_pgm("data/process_window/defocus_" +
                      std::to_string(static_cast<int>(defocus)) + ".pgm",
                  golden);
  }
  std::printf("\nwrote data/process_window/defocus_*.pgm\n");

  // Bossung analysis of one via: CD through the center of the densest
  // feature across the focus range, and the resulting depth of focus.
  int64_t best_r = 0, best_c = 0;
  float best = -1;
  const int64_t n = bench.tile_px();
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      if (mask[r * n + c] > best) {
        best = mask[r * n + c];
        best_r = r;
        best_c = c;
      }
    }
  }
  const auto curve = optics::bossung_sweep(
      nominal.config(), mask, nominal.threshold(),
      optics::CutLine{true, best_r}, best_c,
      {-80.0, -40.0, 0.0, 40.0, 80.0});
  std::printf("\nBossung (CD through a via at row %lld):\n",
              static_cast<long long>(best_r));
  for (const auto& p : curve) {
    std::printf("  defocus %+5.0f nm  CD %6.1f nm\n", p.defocus_nm, p.cd_nm);
  }
  std::printf("depth of focus (10%% CD tolerance): %.0f nm\n",
              optics::depth_of_focus_nm(curve));
  std::printf("(nominal-focus DOINN tracks the 0 nm condition best; training "
              "per-condition models or conditioning on focus is the paper's "
              "stated future work)\n");
  return 0;
}
