// Inverse lithography with DOINN (the paper's future-work direction).
//
// Takes a via design, uses its golden resist image as the TARGET, and
// gradient-descends a mask through the trained (frozen) DOINN so the
// predicted contour matches the target. The golden engine scores the
// optimized mask against the original design mask.
//
// Expected outcome: the ILT mask prints the target at least as faithfully
// as the OPC'ed input, found purely by gradients through the learned model
// — no rigorous simulation inside the optimization loop.
#include <cstdio>

#include "core/experiments.h"
#include "core/ilt.h"
#include "io/io.h"

using namespace litho;

int main() {
  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  auto model_base = core::trained_model("DOINN", bench);
  auto* doinn = dynamic_cast<core::Doinn*>(model_base.get());

  const auto& sim = core::simulator_for(bench.pixel_nm());
  // The design (no OPC) and the wafer target we want to print.
  Tensor design = core::generate_mask(sim, core::DatasetKind::kViaSparse,
                                      bench.tile_px(), 515,
                                      /*opc_iterations=*/0);
  // Target: what a well-corrected mask would print (golden resist of the
  // OPC'ed version of the same design).
  Tensor opc_mask = core::generate_mask(sim, core::DatasetKind::kViaSparse,
                                        bench.tile_px(), 515,
                                        /*opc_iterations=*/6);
  Tensor target = sim.simulate(opc_mask);

  std::printf("running %d ILT iterations through the frozen DOINN...\n", 40);
  core::IltConfig cfg;
  const core::IltResult result =
      core::optimize_mask(*doinn, target, design, cfg);
  std::printf("objective: %.4f -> %.4f\n", result.loss.front(),
              result.loss.back());

  // Score with the GOLDEN engine (never used during optimization).
  const Tensor printed_design = sim.simulate(design);
  const Tensor printed_ilt = sim.simulate(result.binary_mask);
  const auto m_design = core::evaluate_contours(printed_design, target);
  const auto m_ilt = core::evaluate_contours(printed_ilt, target);
  const auto m_opc = core::evaluate_contours(sim.simulate(opc_mask), target);
  std::printf("golden-engine verification vs target contour:\n");
  std::printf("  raw design mask   mIOU %.2f%%\n", 100 * m_design.miou);
  std::printf("  DOINN-ILT mask    mIOU %.2f%%\n", 100 * m_ilt.miou);
  std::printf("  edge-based OPC    mIOU %.2f%% (reference flow)\n",
              100 * m_opc.miou);

  io::ensure_dir("data/ilt");
  io::write_pgm("data/ilt/design.pgm", design);
  io::write_pgm("data/ilt/ilt_mask.pgm", result.mask);
  io::write_pgm("data/ilt/target.pgm", target);
  io::write_pgm("data/ilt/printed_ilt.pgm", printed_ilt);
  std::printf("wrote data/ilt/*.pgm\n");
  return 0;
}
