// Quickstart: the smallest end-to-end DOINN flow.
//
//   1. Configure the golden SOCS lithography engine.
//   2. Generate a small via-layer dataset (layout -> OPC -> golden contours).
//   3. Train a compact DOINN on it.
//   4. Predict the resist contour of an unseen mask and score it.
//
// Runs in about a minute on one CPU core. Outputs PGM images under
// data/quickstart/.
#include <cstdio>

#include "core/dataset.h"
#include "core/doinn.h"
#include "core/trainer.h"
#include "io/io.h"

using namespace litho;

int main() {
  // 1. Golden engine: 193i annular illumination, 16 nm/px raster.
  optics::OpticalConfig ocfg;
  ocfg.pixel_nm = 16.0;
  ocfg.kernel_grid = 48;
  ocfg.kernel_count = 12;
  optics::LithoSimulator sim(ocfg, optics::compute_socs_kernels(ocfg));
  std::printf("golden engine ready: %zu SOCS kernels, threshold %.3f\n",
              sim.kernels().size(), sim.threshold());

  // 2. Dataset: 24 OPC'ed via clips of 64x64 px (1 um^2 at this raster).
  core::DatasetSpec spec;
  spec.kind = core::DatasetKind::kViaDense;
  spec.count = 24;
  spec.tile_px = 64;
  spec.seed = 7;
  spec.opc_iterations = 3;
  const core::ContourDataset train = core::build_dataset(sim, spec);
  spec.count = 6;
  spec.seed = 99;
  const core::ContourDataset test = core::build_dataset(sim, spec);
  std::printf("dataset: %lld train / %lld test clips\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(test.size()));

  // 3. A compact DOINN for 64 px tiles.
  core::DoinnConfig dcfg;
  dcfg.tile = 64;
  dcfg.modes = 5;  // pooled grid is 8x8 -> half spectrum 8x5
  dcfg.gp_channels = 8;
  std::mt19937 rng(42);
  core::Doinn model(dcfg, rng);
  std::printf("DOINN: %lld parameters\n",
              static_cast<long long>(model.num_parameters()));

  core::TrainConfig tcfg;
  tcfg.epochs = 10;
  tcfg.batch_size = 2;
  tcfg.on_epoch = [](int64_t e, double loss) {
    std::printf("  epoch %lld  loss %.4f\n", static_cast<long long>(e), loss);
  };
  core::train_model(model, train, tcfg);

  // 4. Evaluate on unseen clips.
  const core::SegmentationMetrics m = core::evaluate_model(model, test);
  std::printf("test mPA %.2f%%  mIOU %.2f%%\n", 100 * m.mpa, 100 * m.miou);

  io::ensure_dir("data/quickstart");
  const Tensor& mask = test.masks[0];
  io::write_pgm("data/quickstart/mask.pgm", mask);
  io::write_pgm("data/quickstart/golden.pgm", test.resists[0]);
  io::write_pgm("data/quickstart/predicted.pgm",
                core::predict_contour(model, mask));
  std::printf("wrote data/quickstart/{mask,golden,predicted}.pgm\n");
  return 0;
}
