// OPC verification acceleration: the mask-optimization use case of the
// paper (Figure 1 / Figure 8).
//
// Edge-based OPC needs a lithography simulation per iteration. This example
// runs the golden-engine OPC loop on a metal clip and, at every iteration,
// also predicts the contour with the trained DOINN — demonstrating that the
// learned simulator tracks the subtle mask perturbations OPC makes
// (Figure 8's claim), and comparing the wall-clock cost of golden vs
// learned verification.
#include <chrono>
#include <cstdio>

#include "core/experiments.h"
#include "layout/layout.h"
#include "opc/mrc.h"
#include "opc/opc.h"

using namespace litho;

int main() {
  const core::Benchmark bench = core::iccad2013(core::Resolution::kLow);
  auto doinn = core::trained_model("DOINN", bench);

  const auto& sim = core::simulator_for(bench.pixel_nm());
  layout::MetalLayerGenerator::Params p;
  p.clip_nm = bench.tile_px() * static_cast<int64_t>(sim.config().pixel_nm);
  layout::MetalLayerGenerator gen(p, layout::DesignRules{64, 64});
  std::mt19937 rng(606);
  const layout::Clip clip = gen.generate(rng);
  std::printf("clip: %zu metal shapes, density %.1f%%\n", clip.shapes.size(),
              100 * layout::density(clip));

  opc::OpcEngine engine(sim, opc::OpcParams{});
  const auto iterations = engine.run(clip, 12);

  double golden_s = 0, doinn_s = 0;
  std::printf("%5s %12s %12s %10s\n", "iter", "meanEPE(nm)", "DOINN mIOU",
              "agree?");
  for (size_t it = 0; it < iterations.size(); ++it) {
    const Tensor& mask = iterations[it].mask;

    auto t0 = std::chrono::steady_clock::now();
    const Tensor golden = sim.simulate(mask);
    golden_s += std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();

    t0 = std::chrono::steady_clock::now();
    const Tensor pred = core::predict_contour(*doinn, mask);
    doinn_s += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0).count();

    const double miou = core::evaluate_contours(pred, golden).miou;
    std::printf("%5zu %12.2f %12.4f %10s\n", it, iterations[it].mean_abs_epe,
                miou, miou > 0.9 ? "yes" : "no");
  }
  // Sign-off: the corrected mask must stay manufacturable.
  const auto mrc = opc::check_mask_rules(iterations.back().mask,
                                         sim.config().pixel_nm,
                                         opc::MrcRules{48.0, 48.0});
  std::printf("\nMRC on the final corrected mask: %zu violations\n",
              mrc.size());

  std::printf("\nverification wall-clock over %zu iterations:\n",
              iterations.size());
  std::printf("  golden engine (model raster): %.2f s\n", golden_s);
  std::printf("  DOINN:                        %.2f s\n", doinn_s);
  std::printf("(the paper's 85x speedup is against the rigorous engine at "
              "its native fine raster — see bench_fig6_throughput)\n");
  return 0;
}
