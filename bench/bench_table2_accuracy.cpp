// Regenerates paper Table 2: "Result Comparison with State-of-the-Art".
//
// Trains (or loads cached weights for) UNet, DAMO-DLS and DOINN on each
// benchmark stand-in and reports mPA / mIOU on the held-out test clips.
// DAMO-DLS rows marked "-" on high-resolution inputs, as in the paper
// ("DAMO-DLS only supports 1000x1000 inputs").
//
// Expected shape vs the paper: DOINN >= DAMO-DLS >= UNet on every row, with
// the largest gaps on the metal layer and the dense-via N14 row.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

using namespace litho;

int main() {
  bench::banner("Table 2: Result Comparison with State-of-the-Art");
  std::printf("%-18s | %7s %7s | %7s %7s | %7s %7s\n", "Benchmark",
              "UNet", "", "DAMO", "", "DOINN", "");
  std::printf("%-18s | %7s %7s | %7s %7s | %7s %7s\n", "",
              "mPA%", "mIOU%", "mPA%", "mIOU%", "mPA%", "mIOU%");
  std::printf("--------------------------------------------------------------\n");

  const std::vector<core::Benchmark> rows = {
      core::ispd2019(core::Resolution::kLow),
      core::ispd2019(core::Resolution::kHigh),
      core::iccad2013(core::Resolution::kLow),
      core::iccad2013(core::Resolution::kHigh),
      core::n14(),
  };

  for (const core::Benchmark& bench : rows) {
    const core::ContourDataset test = core::test_set(bench);
    std::printf("%-18s |", bench.display().c_str());
    for (const std::string& name : {"UNet", "DAMO-DLS", "DOINN"}) {
      if (name == "DAMO-DLS" && !core::damo_supports(bench)) {
        std::printf(" %7s %7s |", "-", "-");
        continue;
      }
      bool trained = false;
      auto model = core::trained_model(name, bench, &trained);
      const core::SegmentationMetrics m = core::evaluate_model(*model, test);
      std::printf(" %7.2f %7.2f %s", 100 * m.mpa, 100 * m.miou,
                  name == "DOINN" ? "" : "|");
      std::fflush(stdout);
      (void)trained;
    }
    std::printf("\n");
  }
  std::printf("\nModel sizes: ");
  for (const std::string& name : {"UNet", "DAMO-DLS", "DOINN"}) {
    auto m = core::make_model(name, 42);
    std::printf("%s %lldk params  ", name.c_str(),
                static_cast<long long>(m->num_parameters() / 1000));
  }
  std::printf("\n(paper: DOINN 1.3M vs DAMO-DLS 18M at full scale — the "
              "20x size ratio is verified in tests at paper dimensions)\n");
  return 0;
}
