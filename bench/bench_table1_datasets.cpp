// Regenerates paper Table 1: "Details of the Dataset".
//
// Prints the benchmark stand-ins with their train/test split, physical tile
// size and the golden engine used, plus generation statistics (shape count,
// density) that characterize each dataset.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

using namespace litho;

int main() {
  bench::banner("Table 1: Details of the Dataset (stand-in reproduction)");
  std::printf("%-18s %7s %6s %12s %10s %14s\n", "Dataset", "Train", "Test",
              "Tile size", "px @ nm", "Litho engine");

  const std::vector<core::Benchmark> rows = {
      core::iccad2013(core::Resolution::kLow),
      core::iccad2013(core::Resolution::kHigh),
      core::ispd2019(core::Resolution::kLow),
      core::ispd2019(core::Resolution::kHigh),
      core::n14(),
  };
  for (const core::Benchmark& b : rows) {
    const double side_um = b.tile_px() * b.pixel_nm() / 1000.0;
    std::printf("%-18s %7lld %6lld %9.1f um2 %4lld @ %-3.0f %14s\n",
                b.display().c_str(),
                static_cast<long long>(b.train_count),
                static_cast<long long>(b.test_count), side_um * side_um,
                static_cast<long long>(b.tile_px()), b.pixel_nm(),
                "SOCS (Hopkins)");
  }

  // Large-tile evaluation set (ISPD-2019-LT): 64 um^2 tiles.
  const auto& sim = core::simulator_for(16.0);
  std::printf("%-18s %7s %6d %9.1f um2 %4d @ %-3.0f %14s\n", "ISPD-2019-LT",
              "-", 4, 8.192 * 8.192, 512, 16.0, "SOCS (Hopkins)");

  std::printf("\nGeneration statistics (first training clip per dataset):\n");
  for (const core::Benchmark& b :
       {core::iccad2013(core::Resolution::kLow),
        core::ispd2019(core::Resolution::kLow), core::n14()}) {
    const core::ContourDataset ds = core::train_set(b);
    double mask_density = 0, resist_density = 0;
    for (int64_t i = 0; i < ds.size(); ++i) {
      mask_density += ds.masks[static_cast<size_t>(i)].mean();
      resist_density += ds.resists[static_cast<size_t>(i)].mean();
    }
    mask_density /= static_cast<double>(ds.size());
    resist_density /= static_cast<double>(ds.size());
    std::printf("  %-16s mask density %5.2f%%  printed density %5.2f%%\n",
                b.display().c_str(), 100 * mask_density, 100 * resist_density);
  }
  std::printf("\nOPC: 4 edge-based iterations per clip; golden contours from "
              "the SOCS engine (threshold %.3f).\n",
              sim.threshold());
  return 0;
}
