// GEMM micro-benchmark: packed tiled engine + implicit-im2col
// convolution vs the pre-PR kernels, which are reproduced verbatim below
// under `legacy` so the comparison stays honest as the library moves on.
// The headline number is the batched conv-shaped GEMM (Cout x CKK x L of
// the 256x256 DOINN refine convs); the table also covers the three layout
// variants, the full conv2d forward (explicit im2col vs implicit packing),
// the 1x1 fast path, and the Fourier Unit's per-mode spectral mixing.
// Finishes by checking that conv2d outputs are bitwise identical to the
// pre-PR formulation and across thread counts, and writes the table as
// machine-readable BENCH_gemm.json for cross-PR perf tracking.
//
// Usage: bench_gemm_micro [reps]   (exit 0 iff parity, determinism and the
// >= 3x headline hold)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace legacy {
// -- Pre-PR kernels (seed src/tensor/tensor.cpp + src/autograd/ops.cpp),
// kept bit-for-bit --------------------------------------------------------

constexpr int64_t kBlock = 64;

void gemm_accumulate(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const int64_t k1 = std::min(k0 + kBlock, k);
      for (int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float aik = a[i * k + kk];
          if (aik == 0.f) continue;
          const float* bk = b + kk * n;
          for (int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  std::fill(c, c + m * n, 0.f);
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  std::fill(c, c + m * n, 0.f);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a + kk * m;
    const float* bk = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float aik = ak[i];
      if (aik == 0.f) continue;
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
}

void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col) {
  const int64_t oh = litho::ag::conv_out_size(h, k, stride, padding);
  const int64_t ow = litho::ag::conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* dst = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.f;
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

// Seed conv2d forward: per-sample explicit im2col + naive GEMM + bias pass
// (the seed parallelized over samples; run through the same parallel_for so
// thread counts compare fairly).
litho::Tensor conv2d_forward(const litho::Tensor& x, const litho::Tensor& w,
                             const litho::Tensor& b, int64_t stride,
                             int64_t padding) {
  const int64_t n = x.size(0), cin = x.size(1), h = x.size(2), ww = x.size(3);
  const int64_t cout = w.size(0), k = w.size(2);
  const int64_t oh = litho::ag::conv_out_size(h, k, stride, padding);
  const int64_t ow = litho::ag::conv_out_size(ww, k, stride, padding);
  const int64_t ckk = cin * k * k, l = oh * ow;
  litho::Tensor out({n, cout, oh, ow});
  litho::runtime::parallel_for(n, [&](int64_t n0, int64_t n1) {
    std::vector<float> col(static_cast<size_t>(ckk * l));
    for (int64_t s = n0; s < n1; ++s) {
      im2col(x.data() + s * cin * h * ww, cin, h, ww, k, stride, padding,
             col.data());
      gemm(w.data(), col.data(), out.data() + s * cout * l, cout, ckk, l);
      if (b.numel() > 0) {
        for (int64_t c = 0; c < cout; ++c) {
          float* p = out.data() + (s * cout + c) * l;
          const float bias = b[c];
          for (int64_t i = 0; i < l; ++i) p[i] += bias;
        }
      }
    }
  });
  return out;
}

// Seed per-mode complex contraction (serial bixy,ioxy->boxy loop).
void cmode(int64_t bsz, int64_t ci, int64_t co, int64_t xy, const float* vr,
           const float* vi, const float* wr, const float* wi, float* zr,
           float* zi) {
  std::fill(zr, zr + bsz * co * xy, 0.f);
  std::fill(zi, zi + bsz * co * xy, 0.f);
  for (int64_t b = 0; b < bsz; ++b) {
    for (int64_t o = 0; o < co; ++o) {
      float* zrp = zr + (b * co + o) * xy;
      float* zip = zi + (b * co + o) * xy;
      for (int64_t i = 0; i < ci; ++i) {
        const float* vrp = vr + (b * ci + i) * xy;
        const float* vip = vi + (b * ci + i) * xy;
        const float* wrp = wr + (i * co + o) * xy;
        const float* wip = wi + (i * co + o) * xy;
        for (int64_t p = 0; p < xy; ++p) {
          zrp[p] += vrp[p] * wrp[p] - vip[p] * wip[p];
          zip[p] += vrp[p] * wip[p] + vip[p] * wrp[p];
        }
      }
    }
  }
}

}  // namespace legacy

namespace {

using litho::Tensor;

struct Row {
  std::string op;
  std::string shape;
  double legacy_ms;
  double new_ms;
};

std::vector<Row> g_rows;

using litho::bench::max_abs_diff;

template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) best = std::min(best, litho::bench::seconds(fn));
  return best;
}

void report(const std::string& op, const std::string& shape, double legacy_s,
            double new_s) {
  g_rows.push_back({op, shape, legacy_s * 1e3, new_s * 1e3});
  std::printf("%-26s %-18s %9.2f ms %9.2f ms %7.2fx\n", op.c_str(),
              shape.c_str(), legacy_s * 1e3, new_s * 1e3, legacy_s / new_s);
}

void write_json(const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shape\": \"%s\", \"legacy_ms\": %.3f, "
                 "\"new_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), r.legacy_ms, r.new_ms,
                 r.legacy_ms / r.new_ms, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  litho::bench::banner("bench_gemm_micro: packed tiled GEMM + implicit im2col");
  std::printf("threads=%d reps=%d  (MR=%lld NR=%lld KC=%lld NC=%lld)\n\n",
              litho::runtime::ThreadPool::default_num_threads(), reps,
              (long long)litho::kGemmMR, (long long)litho::kGemmNR,
              (long long)litho::kGemmKC, (long long)litho::kGemmNC);
  std::printf("%-26s %-18s %12s %12s %8s\n", "case", "shape", "legacy", "packed",
              "speedup");

  std::mt19937 rng(42);
  bool ok = true;

  // -- Headline: batched conv-shaped GEMM (convr1 of the IR refine stack on
  // a 256x256 clip: Cout=32, CKK=4*3*3=36, L=256*256, batch 4). The legacy
  // side runs through the same sample-parallel harness the seed conv used.
  double headline = 0.0;
  {
    const int64_t bsz = 4, m = 32, k = 36, n = 65536;
    std::vector<Tensor> a, b;
    for (int64_t s = 0; s < bsz; ++s) {
      a.push_back(Tensor::randn({m, k}, rng));
      b.push_back(Tensor::randn({k, n}, rng));
    }
    Tensor cl({bsz, m, n}), cn({bsz, m, n});
    const double leg = best_seconds(reps, [&] {
      litho::runtime::parallel_for(bsz, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          legacy::gemm(a[s].data(), b[s].data(), cl.data() + s * m * n, m, k, n);
        }
      });
    });
    const double neu = best_seconds(reps, [&] {
      for (int64_t s = 0; s < bsz; ++s) {
        litho::gemm(a[s].data(), b[s].data(), cn.data() + s * m * n, m, k, n);
      }
    });
    headline = leg / neu;
    report("gemm NN batched convr1", "4x 32x36x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // Deeper refine conv (convr2: Cout=16, CKK=288) — the most memory-bound
  // conv shape in the stack; reported, not gated.
  {
    const int64_t bsz = 2, m = 16, k = 288, n = 65536;
    std::vector<Tensor> a, b;
    for (int64_t s = 0; s < bsz; ++s) {
      a.push_back(Tensor::randn({m, k}, rng));
      b.push_back(Tensor::randn({k, n}, rng));
    }
    Tensor cl({bsz, m, n}), cn({bsz, m, n});
    const double leg = best_seconds(reps, [&] {
      litho::runtime::parallel_for(bsz, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          legacy::gemm(a[s].data(), b[s].data(), cl.data() + s * m * n, m, k, n);
        }
      });
    });
    const double neu = best_seconds(reps, [&] {
      for (int64_t s = 0; s < bsz; ++s) {
        litho::gemm(a[s].data(), b[s].data(), cn.data() + s * m * n, m, k, n);
      }
    });
    report("gemm NN batched convr2", "2x 16x288x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // -- Layout variants on conv-backward shapes ----------------------------
  {
    const int64_t m = 64, k = 576, n = 4096;
    Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({k, n}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg =
        best_seconds(reps, [&] { legacy::gemm(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu =
        best_seconds(reps, [&] { litho::gemm(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm NN", "64x576x4096", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }
  {
    // TN: gcol = w^T gout (input-gradient shape).
    const int64_t m = 288, k = 16, n = 65536;
    Tensor a = Tensor::randn({k, m}, rng), b = Tensor::randn({k, n}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg = best_seconds(
        reps, [&] { legacy::gemm_at_b(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu = best_seconds(
        reps, [&] { litho::gemm_at_b(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm AtB", "288x16x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }
  {
    // NT: gw = gout col^T (weight-gradient shape).
    const int64_t m = 16, k = 65536, n = 288;
    Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({n, k}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg = best_seconds(
        reps, [&] { legacy::gemm_a_bt(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu = best_seconds(
        reps, [&] { litho::gemm_a_bt(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm ABt", "16x65536x288", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // -- Full conv2d forward: explicit im2col vs implicit packing -----------
  Tensor conv_legacy_out, conv_new_out;
  {
    const int64_t bsz = 2, cin = 32, cout = 16, hw = 256;
    Tensor x = Tensor::randn({bsz, cin, hw, hw}, rng);
    Tensor w = Tensor::randn({cout, cin, 3, 3}, rng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({cout}, rng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    const double leg = best_seconds(
        reps, [&] { conv_legacy_out = legacy::conv2d_forward(x, w, bias, 1, 1); });
    const double neu = best_seconds(
        reps, [&] { conv_new_out = litho::ag::conv2d(xv, wv, bv, 1, 1).value(); });
    report("conv2d 3x3 fwd", "2x32x256^2->16", leg, neu);
  }
  {
    const int64_t bsz = 2, cin = 16, cout = 16, hw = 256;
    Tensor x = Tensor::randn({bsz, cin, hw, hw}, rng);
    Tensor w = Tensor::randn({cout, cin, 1, 1}, rng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({cout}, rng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    Tensor o1, o2;
    const double leg = best_seconds(
        reps, [&] { o1 = legacy::conv2d_forward(x, w, bias, 1, 0); });
    const double neu = best_seconds(
        reps, [&] { o2 = litho::ag::conv2d(xv, wv, bv, 1, 0).value(); });
    report("conv2d 1x1 fast path", "2x16x256^2->16", leg, neu);
    ok = ok && max_abs_diff(o1, o2) == 0.0;
  }

  // -- Fourier Unit spectral mixing (per-mode complex matmul) -------------
  {
    const int64_t bsz = 2, ci = 16, co = 16, modes = 50;
    const int64_t xy = modes * modes;
    Tensor vr = Tensor::randn({bsz, ci, modes, modes}, rng);
    Tensor vi = Tensor::randn({bsz, ci, modes, modes}, rng);
    Tensor wr = Tensor::randn({ci, co, modes, modes}, rng);
    Tensor wi = Tensor::randn({ci, co, modes, modes}, rng);
    Tensor zlr({bsz, co, modes, modes}), zli({bsz, co, modes, modes});
    Tensor znr({bsz, co, modes, modes}), zni({bsz, co, modes, modes});
    const double leg = best_seconds(reps, [&] {
      legacy::cmode(bsz, ci, co, xy, vr.data(), vi.data(), wr.data(), wi.data(),
                    zlr.data(), zli.data());
    });
    const double neu = best_seconds(reps, [&] {
      litho::cmode_mix(bsz, ci, co, xy, vr.data(), vi.data(), wr.data(),
                       wi.data(), znr.data(), zni.data());
    });
    report("cmode_matmul mixing", "2x16x16x50^2", leg, neu);
    ok = ok && max_abs_diff(zlr, znr) == 0.0 && max_abs_diff(zli, zni) == 0.0;
  }

  // -- Parity and determinism gates ---------------------------------------
  const double conv_diff = max_abs_diff(conv_legacy_out, conv_new_out);
  std::printf("\nconv2d |new - legacy| max: %.3g (bitwise: %s)\n", conv_diff,
              conv_diff == 0.0 ? "yes" : "NO");
  ok = ok && conv_diff == 0.0;

  bool deterministic = true;
  {
    std::mt19937 drng(7);
    Tensor x = Tensor::randn({3, 8, 40, 40}, drng);
    Tensor w = Tensor::randn({16, 8, 3, 3}, drng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({16}, drng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    Tensor o1, o8;
    {
      litho::runtime::ThreadPool p1(1);
      litho::runtime::ScopedPool sp(&p1);
      o1 = litho::ag::conv2d(xv, wv, bv, 1, 1).value();
    }
    {
      litho::runtime::ThreadPool p8(8);
      litho::runtime::ScopedPool sp(&p8);
      o8 = litho::ag::conv2d(xv, wv, bv, 1, 1).value();
    }
    deterministic = max_abs_diff(o1, o8) == 0.0;
  }
  std::printf("conv2d bitwise identical across 1 vs 8 threads: %s\n",
              deterministic ? "yes" : "NO");
  ok = ok && deterministic;

  std::printf("headline speedup (batched convr1 GEMM): %.2fx (>= 3x: %s)\n",
              headline, headline >= 3.0 ? "yes" : "NO");
  ok = ok && headline >= 3.0;

  write_json("BENCH_gemm.json");
  std::printf("wrote BENCH_gemm.json (%zu rows)\n", g_rows.size());
  return ok ? 0 : 1;
}
