// GEMM micro-benchmark: packed tiled engine + implicit-im2col
// convolution vs the pre-PR kernels, which are reproduced verbatim below
// under `legacy` so the comparison stays honest as the library moves on.
// The headline number is the batched conv-shaped GEMM (Cout x CKK x L of
// the 256x256 DOINN refine convs); the table also covers the three layout
// variants, the full conv2d forward (explicit im2col vs implicit packing),
// the 1x1 fast path, and the Fourier Unit's per-mode spectral mixing.
// Finishes by checking that conv2d outputs are bitwise identical to the
// pre-PR formulation and across thread counts, and writes the table as
// machine-readable BENCH_gemm.json for cross-PR perf tracking.
//
// A second section covers the load-time prepacking path (tensor/prepack.h):
// PackedWeight vs per-call PackedA on pack-bound serving GEMM shapes, plus
// the int8 and bf16 storage modes against the prepacked fp32 baseline. The
// fp32 prepacked result is gated bitwise-identical to the per-call path;
// the speedup gates are >= 1.15x prepack and >= 2x int8 (>= 1.0x / 1.2x
// under --quick, whose single rep is too noisy for the tight bounds).
//
// Usage: bench_gemm_micro [reps] [--quick]   (exit 0 iff parity,
// determinism and the speedup gates hold; --quick is the CI smoke mode)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/prepack.h"
#include "tensor/tensor.h"

namespace legacy {
// -- Pre-PR kernels (seed src/tensor/tensor.cpp + src/autograd/ops.cpp),
// kept bit-for-bit --------------------------------------------------------

constexpr int64_t kBlock = 64;

void gemm_accumulate(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const int64_t k1 = std::min(k0 + kBlock, k);
      for (int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float aik = a[i * k + kk];
          if (aik == 0.f) continue;
          const float* bk = b + kk * n;
          for (int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

void gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  std::fill(c, c + m * n, 0.f);
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  std::fill(c, c + m * n, 0.f);
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* ak = a + kk * m;
    const float* bk = b + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float aik = ak[i];
      if (aik == 0.f) continue;
      float* ci = c + i * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  }
}

void im2col(const float* x, int64_t c, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t padding, float* col) {
  const int64_t oh = litho::ag::conv_out_size(h, k, stride, padding);
  const int64_t ow = litho::ag::conv_out_size(w, k, stride, padding);
  const int64_t l = oh * ow;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* dst = col + ((ch * k + ki) * k + kj) * l;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + ki - padding;
          if (iy < 0 || iy >= h) {
            for (int64_t ox = 0; ox < ow; ++ox) dst[oy * ow + ox] = 0.f;
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kj - padding;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.f;
          }
        }
      }
    }
  }
}

// Seed conv2d forward: per-sample explicit im2col + naive GEMM + bias pass
// (the seed parallelized over samples; run through the same parallel_for so
// thread counts compare fairly).
litho::Tensor conv2d_forward(const litho::Tensor& x, const litho::Tensor& w,
                             const litho::Tensor& b, int64_t stride,
                             int64_t padding) {
  const int64_t n = x.size(0), cin = x.size(1), h = x.size(2), ww = x.size(3);
  const int64_t cout = w.size(0), k = w.size(2);
  const int64_t oh = litho::ag::conv_out_size(h, k, stride, padding);
  const int64_t ow = litho::ag::conv_out_size(ww, k, stride, padding);
  const int64_t ckk = cin * k * k, l = oh * ow;
  litho::Tensor out({n, cout, oh, ow});
  litho::runtime::parallel_for(n, [&](int64_t n0, int64_t n1) {
    std::vector<float> col(static_cast<size_t>(ckk * l));
    for (int64_t s = n0; s < n1; ++s) {
      im2col(x.data() + s * cin * h * ww, cin, h, ww, k, stride, padding,
             col.data());
      gemm(w.data(), col.data(), out.data() + s * cout * l, cout, ckk, l);
      if (b.numel() > 0) {
        for (int64_t c = 0; c < cout; ++c) {
          float* p = out.data() + (s * cout + c) * l;
          const float bias = b[c];
          for (int64_t i = 0; i < l; ++i) p[i] += bias;
        }
      }
    }
  });
  return out;
}

// Seed per-mode complex contraction (serial bixy,ioxy->boxy loop).
void cmode(int64_t bsz, int64_t ci, int64_t co, int64_t xy, const float* vr,
           const float* vi, const float* wr, const float* wi, float* zr,
           float* zi) {
  std::fill(zr, zr + bsz * co * xy, 0.f);
  std::fill(zi, zi + bsz * co * xy, 0.f);
  for (int64_t b = 0; b < bsz; ++b) {
    for (int64_t o = 0; o < co; ++o) {
      float* zrp = zr + (b * co + o) * xy;
      float* zip = zi + (b * co + o) * xy;
      for (int64_t i = 0; i < ci; ++i) {
        const float* vrp = vr + (b * ci + i) * xy;
        const float* vip = vi + (b * ci + i) * xy;
        const float* wrp = wr + (i * co + o) * xy;
        const float* wip = wi + (i * co + o) * xy;
        for (int64_t p = 0; p < xy; ++p) {
          zrp[p] += vrp[p] * wrp[p] - vip[p] * wip[p];
          zip[p] += vrp[p] * wip[p] + vip[p] * wrp[p];
        }
      }
    }
  }
}

}  // namespace legacy

namespace {

using litho::Tensor;

struct Row {
  std::string op;
  std::string shape;
  double legacy_ms;
  double new_ms;
};

std::vector<Row> g_rows;
std::vector<Row> g_prec;  // precision section: legacy_ms = baseline path

using litho::bench::max_abs_diff;

template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) best = std::min(best, litho::bench::seconds(fn));
  return best;
}

void report(const std::string& op, const std::string& shape, double legacy_s,
            double new_s) {
  g_rows.push_back({op, shape, legacy_s * 1e3, new_s * 1e3});
  std::printf("%-26s %-18s %9.2f ms %9.2f ms %7.2fx\n", op.c_str(),
              shape.c_str(), legacy_s * 1e3, new_s * 1e3, legacy_s / new_s);
}

void report_prec(const std::string& op, const std::string& shape,
                 double base_s, double new_s) {
  g_prec.push_back({op, shape, base_s * 1e3, new_s * 1e3});
  std::printf("%-26s %-18s %9.3f ms %9.3f ms %7.2fx\n", op.c_str(),
              shape.c_str(), base_s * 1e3, new_s * 1e3, base_s / new_s);
}

void write_rows(FILE* f, const std::vector<Row>& rows, const char* base_key) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"shape\": \"%s\", \"%s\": %.3f, "
                 "\"new_ms\": %.3f, \"speedup\": %.3f}%s\n",
                 r.op.c_str(), r.shape.c_str(), base_key, r.legacy_ms,
                 r.new_ms, r.legacy_ms / r.new_ms,
                 i + 1 < rows.size() ? "," : "");
  }
}

void write_json(const char* path, double prepack_x, double int8_x,
                double prepack_gate, double int8_gate, bool bitwise) {
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"gemm\": [\n");
  write_rows(f, g_rows, "legacy_ms");
  std::fprintf(f, "  ],\n  \"precision\": [\n");
  write_rows(f, g_prec, "base_ms");
  std::fprintf(f,
               "  ],\n  \"gates\": {\"prepack_fp32_speedup\": %.3f, "
               "\"prepack_fp32_min\": %.2f, \"int8_speedup\": %.3f, "
               "\"int8_min\": %.2f, \"prepack_bitwise\": %s}\n}\n",
               prepack_x, prepack_gate, int8_x, int8_gate,
               bitwise ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
      reps = 1;
    } else {
      reps = std::atoi(argv[i]);
    }
  }
  litho::bench::banner("bench_gemm_micro: packed tiled GEMM + implicit im2col");
  std::printf("threads=%d reps=%d  (MR=%lld NR=%lld KC=%lld NC=%lld)\n\n",
              litho::runtime::ThreadPool::default_num_threads(), reps,
              (long long)litho::kGemmMR, (long long)litho::kGemmNR,
              (long long)litho::kGemmKC, (long long)litho::kGemmNC);
  std::printf("%-26s %-18s %12s %12s %8s\n", "case", "shape", "legacy", "packed",
              "speedup");

  std::mt19937 rng(42);
  bool ok = true;

  // -- Headline: batched conv-shaped GEMM (convr1 of the IR refine stack on
  // a 256x256 clip: Cout=32, CKK=4*3*3=36, L=256*256, batch 4). The legacy
  // side runs through the same sample-parallel harness the seed conv used.
  double headline = 0.0;
  {
    const int64_t bsz = 4, m = 32, k = 36, n = 65536;
    std::vector<Tensor> a, b;
    for (int64_t s = 0; s < bsz; ++s) {
      a.push_back(Tensor::randn({m, k}, rng));
      b.push_back(Tensor::randn({k, n}, rng));
    }
    Tensor cl({bsz, m, n}), cn({bsz, m, n});
    const double leg = best_seconds(reps, [&] {
      litho::runtime::parallel_for(bsz, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          legacy::gemm(a[s].data(), b[s].data(), cl.data() + s * m * n, m, k, n);
        }
      });
    });
    const double neu = best_seconds(reps, [&] {
      for (int64_t s = 0; s < bsz; ++s) {
        litho::gemm(a[s].data(), b[s].data(), cn.data() + s * m * n, m, k, n);
      }
    });
    headline = leg / neu;
    report("gemm NN batched convr1", "4x 32x36x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // Deeper refine conv (convr2: Cout=16, CKK=288) — the most memory-bound
  // conv shape in the stack; reported, not gated.
  {
    const int64_t bsz = 2, m = 16, k = 288, n = 65536;
    std::vector<Tensor> a, b;
    for (int64_t s = 0; s < bsz; ++s) {
      a.push_back(Tensor::randn({m, k}, rng));
      b.push_back(Tensor::randn({k, n}, rng));
    }
    Tensor cl({bsz, m, n}), cn({bsz, m, n});
    const double leg = best_seconds(reps, [&] {
      litho::runtime::parallel_for(bsz, [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          legacy::gemm(a[s].data(), b[s].data(), cl.data() + s * m * n, m, k, n);
        }
      });
    });
    const double neu = best_seconds(reps, [&] {
      for (int64_t s = 0; s < bsz; ++s) {
        litho::gemm(a[s].data(), b[s].data(), cn.data() + s * m * n, m, k, n);
      }
    });
    report("gemm NN batched convr2", "2x 16x288x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // -- Layout variants on conv-backward shapes ----------------------------
  {
    const int64_t m = 64, k = 576, n = 4096;
    Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({k, n}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg =
        best_seconds(reps, [&] { legacy::gemm(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu =
        best_seconds(reps, [&] { litho::gemm(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm NN", "64x576x4096", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }
  {
    // TN: gcol = w^T gout (input-gradient shape).
    const int64_t m = 288, k = 16, n = 65536;
    Tensor a = Tensor::randn({k, m}, rng), b = Tensor::randn({k, n}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg = best_seconds(
        reps, [&] { legacy::gemm_at_b(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu = best_seconds(
        reps, [&] { litho::gemm_at_b(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm AtB", "288x16x65536", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }
  {
    // NT: gw = gout col^T (weight-gradient shape).
    const int64_t m = 16, k = 65536, n = 288;
    Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({n, k}, rng);
    Tensor cl({m, n}), cn({m, n});
    const double leg = best_seconds(
        reps, [&] { legacy::gemm_a_bt(a.data(), b.data(), cl.data(), m, k, n); });
    const double neu = best_seconds(
        reps, [&] { litho::gemm_a_bt(a.data(), b.data(), cn.data(), m, k, n); });
    report("gemm ABt", "16x65536x288", leg, neu);
    ok = ok && max_abs_diff(cl, cn) == 0.0;
  }

  // -- Full conv2d forward: explicit im2col vs implicit packing -----------
  Tensor conv_legacy_out, conv_new_out;
  {
    const int64_t bsz = 2, cin = 32, cout = 16, hw = 256;
    Tensor x = Tensor::randn({bsz, cin, hw, hw}, rng);
    Tensor w = Tensor::randn({cout, cin, 3, 3}, rng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({cout}, rng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    const double leg = best_seconds(
        reps, [&] { conv_legacy_out = legacy::conv2d_forward(x, w, bias, 1, 1); });
    const double neu = best_seconds(
        reps, [&] { conv_new_out = litho::ag::conv2d(xv, wv, bv, 1, 1).value(); });
    report("conv2d 3x3 fwd", "2x32x256^2->16", leg, neu);
  }
  {
    const int64_t bsz = 2, cin = 16, cout = 16, hw = 256;
    Tensor x = Tensor::randn({bsz, cin, hw, hw}, rng);
    Tensor w = Tensor::randn({cout, cin, 1, 1}, rng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({cout}, rng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    Tensor o1, o2;
    const double leg = best_seconds(
        reps, [&] { o1 = legacy::conv2d_forward(x, w, bias, 1, 0); });
    const double neu = best_seconds(
        reps, [&] { o2 = litho::ag::conv2d(xv, wv, bv, 1, 0).value(); });
    report("conv2d 1x1 fast path", "2x16x256^2->16", leg, neu);
    ok = ok && max_abs_diff(o1, o2) == 0.0;
  }

  // -- Fourier Unit spectral mixing (per-mode complex matmul) -------------
  {
    const int64_t bsz = 2, ci = 16, co = 16, modes = 50;
    const int64_t xy = modes * modes;
    Tensor vr = Tensor::randn({bsz, ci, modes, modes}, rng);
    Tensor vi = Tensor::randn({bsz, ci, modes, modes}, rng);
    Tensor wr = Tensor::randn({ci, co, modes, modes}, rng);
    Tensor wi = Tensor::randn({ci, co, modes, modes}, rng);
    Tensor zlr({bsz, co, modes, modes}), zli({bsz, co, modes, modes});
    Tensor znr({bsz, co, modes, modes}), zni({bsz, co, modes, modes});
    const double leg = best_seconds(reps, [&] {
      legacy::cmode(bsz, ci, co, xy, vr.data(), vi.data(), wr.data(), wi.data(),
                    zlr.data(), zli.data());
    });
    const double neu = best_seconds(reps, [&] {
      litho::cmode_mix(bsz, ci, co, xy, vr.data(), vi.data(), wr.data(),
                       wi.data(), znr.data(), zni.data());
    });
    report("cmode_matmul mixing", "2x16x16x50^2", leg, neu);
    ok = ok && max_abs_diff(zlr, znr) == 0.0 && max_abs_diff(zli, zni) == 0.0;
  }

  // -- Prepack & precision: load-time PackedWeight vs per-call PackedA and
  // the reduced-precision storage modes (tensor/prepack.h). Gated shapes
  // are pack-bound serving GEMMs — few output pixels per weight element:
  // a deep 3x3 conv and a transposed-layout 2x2 decoder weight, both
  // contracting against an 8x8 feature grid. The 64 px refine conv shape
  // is reported for scale but not gated (its packing cost is negligible,
  // so prepacking is only required not to regress it).
  double prepack_x = 1e30, int8_x = 1e30;
  bool prec_bitwise = true;
  std::printf("\n%-26s %-18s %12s %12s %8s\n", "precision case", "shape",
              "base", "new", "speedup");
  {
    struct PrecShape {
      const char* label;
      litho::GemmLayout layout;
      int64_t m, k, n;
      bool gated;
    };
    const PrecShape shapes[] = {
        {"conv 3x3 gp-grid", litho::GemmLayout::kNN, 256, 2304, 64, true},
        {"convT 2x2 decoder", litho::GemmLayout::kTN, 512, 256, 64, true},
        {"conv 3x3 refine", litho::GemmLayout::kNN, 32, 288, 4096, false},
    };
    for (const PrecShape& ps : shapes) {
      Tensor a = ps.layout == litho::GemmLayout::kNN
                     ? Tensor::randn({ps.m, ps.k}, rng)
                     : Tensor::randn({ps.k, ps.m}, rng);
      Tensor b = Tensor::randn({ps.k, ps.n}, rng);
      const litho::StridedBPacker bp(b.data(), ps.n, /*transposed=*/false);
      const int64_t blocks = litho::gemm_col_blocks(ps.n);
      char shape[64];
      std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                    (long long)ps.m, (long long)ps.k, (long long)ps.n);
      Tensor c_pc({ps.m, ps.n}), c_pp({ps.m, ps.n});
      Tensor c_i8({ps.m, ps.n}), c_bf({ps.m, ps.n});

      const double t_percall = best_seconds(reps, [&] {
        litho::PackedA pa(ps.layout, a.data(), ps.m, ps.k);
        for (int64_t blk = 0; blk < blocks; ++blk) {
          litho::gemm_col_block(pa, bp, ps.n, blk, c_pc.data());
        }
      });
      const litho::PackedWeight pw(ps.layout, a.data(), ps.m, ps.k,
                                   litho::Precision::kFp32);
      const double t_prepack = best_seconds(reps, [&] {
        for (int64_t blk = 0; blk < blocks; ++blk) {
          litho::gemm_col_block(pw.fp32_view(), bp, ps.n, blk, c_pp.data());
        }
      });
      prec_bitwise = prec_bitwise && max_abs_diff(c_pc, c_pp) == 0.0;

      const litho::PackedWeight pw8(ps.layout, a.data(), ps.m, ps.k,
                                    litho::Precision::kInt8);
      std::vector<float> combined(ps.m);
      const double t_i8 = best_seconds(reps, [&] {
        // Per-call activation scan + scale fold, as conv2d_prepacked does.
        const float bmax = litho::max_abs(b.data(), ps.k * ps.n);
        const float inv_b = bmax > 0.f ? 127.f / bmax : 0.f;
        for (int64_t i = 0; i < ps.m; ++i) {
          combined[i] = pw8.row_scales()[i] * (bmax / 127.f);
        }
        for (int64_t blk = 0; blk < blocks; ++blk) {
          litho::gemm_col_block_i8(pw8, bp, inv_b, combined.data(), ps.n,
                                   blk, c_i8.data(), nullptr);
        }
      });
      const litho::PackedWeight pwb(ps.layout, a.data(), ps.m, ps.k,
                                    litho::Precision::kBf16);
      const double t_bf = best_seconds(reps, [&] {
        for (int64_t blk = 0; blk < blocks; ++blk) {
          litho::gemm_col_block_bf16(pwb, bp, ps.n, blk, c_bf.data());
        }
      });

      report_prec(std::string("prepack fp32 ") + ps.label, shape, t_percall,
                  t_prepack);
      report_prec(std::string("int8 ") + ps.label, shape, t_prepack, t_i8);
      report_prec(std::string("bf16 ") + ps.label, shape, t_prepack, t_bf);
      if (ps.gated) {
        prepack_x = std::min(prepack_x, t_percall / t_prepack);
        int8_x = std::min(int8_x, t_prepack / t_i8);
      }
      // Reduced precision must stay close to fp32 (quantization noise
      // only): a cheap sanity bound, the tight contour-level bound lives
      // in tests/test_precision.cpp.
      const double mag = std::max(1.0, (double)litho::max_abs(
                                           c_pp.data(), c_pp.numel()));
      ok = ok && max_abs_diff(c_i8, c_pp) < 0.05 * mag;
      ok = ok && max_abs_diff(c_bf, c_pp) < 0.05 * mag;
    }
  }

  // -- Parity and determinism gates ---------------------------------------
  const double conv_diff = max_abs_diff(conv_legacy_out, conv_new_out);
  std::printf("\nconv2d |new - legacy| max: %.3g (bitwise: %s)\n", conv_diff,
              conv_diff == 0.0 ? "yes" : "NO");
  ok = ok && conv_diff == 0.0;

  bool deterministic = true;
  {
    std::mt19937 drng(7);
    Tensor x = Tensor::randn({3, 8, 40, 40}, drng);
    Tensor w = Tensor::randn({16, 8, 3, 3}, drng, 0.f, 0.1f);
    Tensor bias = Tensor::randn({16}, drng);
    const litho::ag::Variable xv(x), wv(w), bv(bias);
    Tensor o1, o8;
    {
      litho::runtime::ThreadPool p1(1);
      litho::runtime::ScopedPool sp(&p1);
      o1 = litho::ag::conv2d(xv, wv, bv, 1, 1).value();
    }
    {
      litho::runtime::ThreadPool p8(8);
      litho::runtime::ScopedPool sp(&p8);
      o8 = litho::ag::conv2d(xv, wv, bv, 1, 1).value();
    }
    deterministic = max_abs_diff(o1, o8) == 0.0;
  }
  std::printf("conv2d bitwise identical across 1 vs 8 threads: %s\n",
              deterministic ? "yes" : "NO");
  ok = ok && deterministic;

  std::printf("headline speedup (batched convr1 GEMM): %.2fx (>= 3x: %s)\n",
              headline, headline >= 3.0 ? "yes" : "NO");
  ok = ok && headline >= 3.0;

  std::printf("prepacked fp32 bitwise identical to per-call packing: %s\n",
              prec_bitwise ? "yes" : "NO");
  ok = ok && prec_bitwise;
  const double prepack_gate = quick ? 1.0 : 1.15;
  const double int8_gate = quick ? 1.2 : 2.0;
  std::printf("prepack fp32 speedup (gated shapes): %.2fx (>= %.2fx: %s)\n",
              prepack_x, prepack_gate, prepack_x >= prepack_gate ? "yes" : "NO");
  ok = ok && prepack_x >= prepack_gate;
  std::printf("int8 speedup vs prepacked fp32 (gated shapes): %.2fx "
              "(>= %.2fx: %s)\n",
              int8_x, int8_gate, int8_x >= int8_gate ? "yes" : "NO");
  ok = ok && int8_x >= int8_gate;

  write_json("BENCH_gemm.json", prepack_x, int8_x, prepack_gate, int8_gate,
             prec_bitwise);
  std::printf("wrote BENCH_gemm.json (%zu + %zu rows)\n", g_rows.size(),
              g_prec.size());
  return ok ? 0 : 1;
}
