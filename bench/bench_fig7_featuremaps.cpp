// Regenerates paper Figure 7: feature-map visualization of the GP and LP
// paths. Writes one PGM image per channel under data/fig7/, plus the input
// mask, golden aerial image and golden contour for reference.
//
// Expected shape: GP channels resemble smoothed intensity (aerial-image-
// like) maps; LP channels respond to shape edges and corners.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "io/io.h"

using namespace litho;

int main() {
  bench::banner("Figure 7: GP / LP feature map visualization");
  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  auto model_base = core::trained_model("DOINN", bench);
  auto* doinn = dynamic_cast<core::Doinn*>(model_base.get());
  doinn->set_training(false);

  const auto& sim = core::simulator_for(bench.pixel_nm());
  Tensor mask = core::generate_mask(sim, core::DatasetKind::kViaSparse,
                                    bench.tile_px(), 1234,
                                    /*opc_iterations=*/4);

  const std::string dir = "data/fig7";
  io::ensure_dir(dir);
  io::write_pgm(dir + "/input_mask.pgm", mask);
  io::write_pgm(dir + "/golden_aerial.pgm", sim.aerial(mask), 0.f, 0.f);
  io::write_pgm(dir + "/golden_contour.pgm", sim.simulate(mask));

  const int64_t n = bench.tile_px();
  ag::Variable x(mask.clone().reshape({1, 1, n, n}), false);

  ag::Variable gp = doinn->gp_features(x);
  const int64_t gc = gp.shape()[1], gh = gp.shape()[2], gw = gp.shape()[3];
  for (int64_t c = 0; c < gc; ++c) {
    Tensor ch({gh, gw});
    std::copy(gp.value().data() + c * gh * gw,
              gp.value().data() + (c + 1) * gh * gw, ch.data());
    io::write_pgm(dir + "/gp_channel" + std::to_string(c) + ".pgm", ch, 0.f,
                  0.f);
  }

  ag::Variable lp = doinn->lp_features(x);
  const int64_t lc = lp.shape()[1], lh = lp.shape()[2], lw = lp.shape()[3];
  for (int64_t c = 0; c < lc; ++c) {
    Tensor ch({lh, lw});
    std::copy(lp.value().data() + c * lh * lw,
              lp.value().data() + (c + 1) * lh * lw, ch.data());
    io::write_pgm(dir + "/lp_channel" + std::to_string(c) + ".pgm", ch, 0.f,
                  0.f);
  }

  // Quantitative check that GP output tracks the aerial image: report the
  // best per-channel correlation with the (pooled) golden aerial intensity.
  Tensor aerial = sim.aerial(mask);
  Tensor pooled({gh, gw});
  const int64_t pool = n / gh;
  for (int64_t r = 0; r < gh; ++r) {
    for (int64_t c = 0; c < gw; ++c) {
      float acc = 0;
      for (int64_t dr = 0; dr < pool; ++dr) {
        for (int64_t dc = 0; dc < pool; ++dc) {
          acc += aerial[(r * pool + dr) * n + c * pool + dc];
        }
      }
      pooled[r * gw + c] = acc / static_cast<float>(pool * pool);
    }
  }
  double best_corr = 0;
  const double pm = pooled.mean();
  for (int64_t c = 0; c < gc; ++c) {
    double num = 0, va = 0, vb = 0;
    const float* f = gp.value().data() + c * gh * gw;
    double fm = 0;
    for (int64_t i = 0; i < gh * gw; ++i) fm += f[i];
    fm /= gh * gw;
    for (int64_t i = 0; i < gh * gw; ++i) {
      num += (f[i] - fm) * (pooled[i] - pm);
      va += (f[i] - fm) * (f[i] - fm);
      vb += (pooled[i] - pm) * (pooled[i] - pm);
    }
    if (va > 0 && vb > 0) {
      best_corr = std::max(best_corr, std::abs(num / std::sqrt(va * vb)));
    }
  }
  std::printf("wrote %lld GP + %lld LP channel images to %s/\n",
              static_cast<long long>(gc), static_cast<long long>(lc),
              dir.c_str());
  std::printf("best |corr(GP channel, pooled aerial intensity)| = %.3f "
              "(paper: GP output captures the intensity map)\n",
              best_corr);
  return 0;
}
