// Design-choice ablation: spectral truncation (modes) and Fourier-Unit
// channel width — the two knobs that act as the capacity levers
// of the GP path (the paper fixes them at 50 modes / 16 channels at full
// scale). Trains compact DOINNs on a small dense-via task and reports
// accuracy vs parameter count vs train time.
//
// Expected shape: accuracy saturates once the retained modes cover the
// pupil's support; channels trade parameters for mIOU sub-linearly.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/dataset.h"
#include "core/doinn.h"
#include "core/trainer.h"

using namespace litho;

int main() {
  bench::banner("Ablation: GP spectral modes / channel width (dense via, 64px)");

  optics::OpticalConfig ocfg;
  ocfg.pixel_nm = 16.0;
  ocfg.kernel_grid = 48;
  ocfg.kernel_count = 12;
  optics::LithoSimulator sim(ocfg, optics::compute_socs_kernels(ocfg));

  core::DatasetSpec spec;
  spec.kind = core::DatasetKind::kViaDense;
  spec.count = 16;
  spec.tile_px = 64;
  spec.seed = 77;
  spec.opc_iterations = 2;
  const core::ContourDataset train = core::build_dataset(sim, spec);
  spec.count = 6;
  spec.seed = 88;
  const core::ContourDataset test = core::build_dataset(sim, spec);

  std::printf("%6s %9s %8s %9s %9s %9s\n", "modes", "channels", "params",
              "mIOU%", "mPA%", "train s");
  struct Point {
    int64_t modes, channels;
  };
  // 64-px tiles pool to an 8x8 GP grid (half-spectrum width 5).
  const Point points[] = {{2, 8}, {3, 8}, {5, 8}, {5, 2}, {5, 4}, {5, 16}};
  for (const Point& pt : points) {
    core::DoinnConfig cfg;
    cfg.tile = 64;
    cfg.modes = pt.modes;
    cfg.gp_channels = pt.channels;
    std::mt19937 rng(42);
    core::Doinn model(cfg, rng);
    core::TrainConfig tcfg;
    tcfg.epochs = 6;
    tcfg.batch_size = 2;
    const auto t0 = std::chrono::steady_clock::now();
    core::train_model(model, train, tcfg);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0).count();
    const auto m = core::evaluate_model(model, test);
    std::printf("%6lld %9lld %8lld %9.2f %9.2f %9.1f\n",
                static_cast<long long>(pt.modes),
                static_cast<long long>(pt.channels),
                static_cast<long long>(model.num_parameters()),
                100 * m.miou, 100 * m.mpa, secs);
    std::fflush(stdout);
  }
  return 0;
}
