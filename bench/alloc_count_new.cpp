// Counting global operator new/delete, linked ONLY into the targets that
// assert the graph executor's zero-steady-state-allocation property
// (bench_graph_exec, test_graph_exec — see target_sources in CMakeLists).
// Every allocation routes through malloc and bumps the counter read by
// litho::runtime::heap_alloc_count(); frees are not counted.
//
// The filename deliberately avoids the bench_*.cpp pattern so the benchmark
// glob never turns it into its own executable.

#include <cstddef>
#include <cstdlib>
#include <new>

#include "runtime/alloc_hooks.h"

namespace {

void* counted_malloc(std::size_t n) {
  litho::runtime::note_heap_alloc();
  return std::malloc(n != 0 ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) {
  litho::runtime::note_heap_alloc();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = counted_malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_malloc(n);
}

void* operator new(std::size_t n, std::align_val_t al) {
  void* p = counted_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  void* p = counted_aligned(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(al));
}

void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
