// Regenerates paper Figure 9: visualization of large-tile simulation.
// Writes PGM panels under data/fig9/:
//   (a) input mask               (d) zoom of (a)
//   (b) default DOINN contour    (e) zoom of (b)  <- expect noise artifacts
//   (c) DOINN-LT contour         (f) zoom of (c)  <- expect clean contours
// plus the golden contour for reference.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/large_tile.h"
#include "io/io.h"

using namespace litho;

namespace {

Tensor crop(const Tensor& img, int64_t r0, int64_t c0, int64_t size) {
  Tensor out({size, size});
  const int64_t w = img.size(1);
  for (int64_t r = 0; r < size; ++r) {
    std::copy(img.data() + (r0 + r) * w + c0,
              img.data() + (r0 + r) * w + c0 + size, out.data() + r * size);
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 9: large-tile simulation visualization");
  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  // The GP-reliant variant (LP disabled) exposes the spectral large-tile
  // artifacts the paper's Figure 9 shows; see bench_table4 for why the full
  // model at this scale is insensitive.
  auto doinn = core::trained_doinn_variant(/*use_ir=*/true, /*use_lp=*/false,
                                           /*use_bypass=*/false, bench);
  core::LargeTilePredictor lt(*doinn);

  const auto& sim = core::simulator_for(bench.pixel_nm());
  const int64_t large = 4 * bench.tile_px();
  Tensor mask = core::generate_mask(sim, core::DatasetKind::kViaSparse, large,
                                    9001, /*opc_iterations=*/4);
  Tensor golden = sim.simulate(mask);

  Tensor plain = lt.predict_plain(mask);
  plain.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
  Tensor stitched = lt.predict(mask);
  stitched.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });

  const std::string dir = "data/fig9";
  io::ensure_dir(dir);
  io::write_pgm(dir + "/a_mask.pgm", mask);
  io::write_pgm(dir + "/b_doinn_default.pgm", plain);
  io::write_pgm(dir + "/c_doinn_lt.pgm", stitched);
  io::write_pgm(dir + "/golden.pgm", golden);
  const int64_t z = large / 4, z0 = large / 2 - z / 2;
  io::write_pgm(dir + "/d_mask_zoom.pgm", crop(mask, z0, z0, z));
  io::write_pgm(dir + "/e_doinn_default_zoom.pgm", crop(plain, z0, z0, z));
  io::write_pgm(dir + "/f_doinn_lt_zoom.pgm", crop(stitched, z0, z0, z));

  const auto m_plain = core::evaluate_contours(plain, golden);
  const auto m_lt = core::evaluate_contours(stitched, golden);
  std::printf("wrote panels to %s/\n", dir.c_str());
  std::printf("default DOINN  mIOU %.2f%%   DOINN-LT mIOU %.2f%%\n",
              100 * m_plain.miou, 100 * m_lt.miou);
  return 0;
}
