// Regenerates paper Figure 6: simulation throughput (um^2/s) of UNet,
// DAMO-DLS, DOINN ("Ours") and the rigorous engine ("Ref").
//
// "Ref" runs the golden SOCS engine at its native fine raster (2 nm/px,
// 24 kernels), which is the fidelity the learned models amortize — the
// paper's reference engines produce contours at 1 nm^2/px. For
// transparency the SOCS engine's cost at the models' 16 nm raster is
// printed as well.
//
// Expected shape: DOINN and UNet within the same order of magnitude (DOINN
// faster), DAMO-DLS ~10x slower, Ref ~2 orders of magnitude slower than
// DOINN.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

using namespace litho;

namespace {

/// Median-of-3 inference seconds for one [tile, tile] mask.
double model_seconds(nn::ContourModel& model, const Tensor& mask) {
  // Warm-up + 3 timed runs.
  (void)core::predict_contour(model, mask);
  double best = 1e30;
  for (int i = 0; i < 3; ++i) {
    const double s =
        bench::seconds([&] { (void)core::predict_contour(model, mask); });
    best = std::min(best, s);
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("Figure 6: Runtime comparison (throughput, um^2/s)");

  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  const auto& sim = core::simulator_for(bench.pixel_nm());
  Tensor mask = core::generate_mask(sim, core::DatasetKind::kViaSparse,
                                    bench.tile_px(), 4242,
                                    /*opc_iterations=*/4);
  const double tile_um2 = bench.tile_px() * bench.pixel_nm() *
                          bench.tile_px() * bench.pixel_nm() / 1e6;

  std::printf("%-22s %12s %14s\n", "Engine", "s / tile", "um^2 / s");
  for (const std::string& name : {"UNet", "DAMO-DLS", "DOINN"}) {
    auto model = core::make_model(name, 42);  // untrained: identical cost
    const double s = model_seconds(*model, mask);
    std::printf("%-22s %12.3f %14.2f\n",
                (name == "DOINN" ? "DOINN (Ours)" : name).c_str(), s,
                tile_um2 / s);
    std::fflush(stdout);
  }

  // Rigorous reference at its native 2 nm raster (1024^2 grid per tile).
  {
    const auto& ref = core::reference_simulator();
    const int64_t fine = static_cast<int64_t>(
        bench.tile_px() * bench.pixel_nm() / ref.config().pixel_nm);
    // Upsample the mask raster to the fine grid (nearest neighbor).
    Tensor fine_mask({fine, fine});
    const int64_t ratio = fine / bench.tile_px();
    for (int64_t r = 0; r < fine; ++r) {
      for (int64_t c = 0; c < fine; ++c) {
        fine_mask[r * fine + c] =
            mask[(r / ratio) * bench.tile_px() + c / ratio];
      }
    }
    (void)ref.simulate(fine_mask);  // warm the kernel-spectrum cache
    const double s = bench::seconds([&] { (void)ref.simulate(fine_mask); });
    std::printf("%-22s %12.3f %14.2f\n", "Ref (SOCS @ 2nm/px)", s,
                tile_um2 / s);
  }
  // The same engine at the models' coarse raster, for transparency.
  {
    (void)sim.simulate(mask);
    const double s = bench::seconds([&] { (void)sim.simulate(mask); });
    std::printf("%-22s %12.3f %14.2f  (golden engine at model raster)\n",
                "SOCS @ 16nm/px", s, tile_um2 / s);
  }
  return 0;
}
