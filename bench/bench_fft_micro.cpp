// FFT micro-benchmark: plan-cache + two-for-one real fast path vs
// the pre-PR kernels, which are reproduced verbatim below under `legacy` so
// the comparison stays honest as the library moves on. The headline number
// is batched 512x512 rfft2+irfft2 (the DOINN Fourier Unit shape); the table
// also covers the complex fft2, a Bluestein (non-power-of-two) size, and the
// adjoint kernels used by autograd. Finishes by checking the new kernels are
// bitwise identical across thread counts.
//
// Usage: bench_fft_micro [reps]
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_util.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"

namespace legacy {
// -- Pre-PR kernels (seed src/fft/fft.cpp), kept bit-for-bit ------------------

using litho::Shape;
using litho::Tensor;
using litho::fft::CTensor;

constexpr double kPi = 3.14159265358979323846;

bool is_pow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft_bluestein(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<std::complex<double>> chirp(n);
  for (size_t k = 0; k < n; ++k) {
    const double e = kPi * static_cast<double>((k * k) % (2 * n)) /
                     static_cast<double>(n);
    chirp[k] = std::complex<double>(std::cos(e), sign * std::sin(e));
  }
  const size_t m = next_pow2(2 * n - 1);
  std::vector<std::complex<double>> fa(m, {0, 0}), fb(m, {0, 0});
  for (size_t k = 0; k < n; ++k) fa[k] = a[k] * chirp[k];
  for (size_t k = 0; k < n; ++k) {
    fb[k] = std::conj(chirp[k]);
    if (k != 0) fb[m - k] = std::conj(chirp[k]);
  }
  fft_pow2(fa, false);
  fft_pow2(fb, false);
  for (size_t k = 0; k < m; ++k) fa[k] *= fb[k];
  fft_pow2(fa, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (size_t k = 0; k < n; ++k) a[k] = fa[k] * inv_m * chirp[k];
}

void fft1d(std::vector<std::complex<double>>& a, bool inverse) {
  if (a.size() <= 1) return;
  if (is_pow2(a.size())) {
    fft_pow2(a, inverse);
  } else {
    fft_bluestein(a, inverse);
  }
}

void fft2_slice(std::vector<std::complex<double>>& buf, int64_t h, int64_t w,
                bool inverse) {
  for (int64_t r = 0; r < h; ++r) {
    std::vector<std::complex<double>> line(static_cast<size_t>(w));
    std::copy(buf.begin() + r * w, buf.begin() + (r + 1) * w, line.begin());
    fft1d(line, inverse);
    std::copy(line.begin(), line.end(), buf.begin() + r * w);
  }
  for (int64_t c = 0; c < w; ++c) {
    std::vector<std::complex<double>> line(static_cast<size_t>(h));
    for (int64_t r = 0; r < h; ++r) line[static_cast<size_t>(r)] = buf[r * w + c];
    fft1d(line, inverse);
    for (int64_t r = 0; r < h; ++r) buf[r * w + c] = line[static_cast<size_t>(r)];
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(h * w);
    for (auto& v : buf) v *= scale;
  }
}

CTensor fft2(const CTensor& x, bool inverse) {
  const Shape& s = x.shape();
  const int64_t h = s[s.size() - 2], w = s[s.size() - 1];
  int64_t batch = 1;
  for (size_t i = 0; i + 2 < s.size(); ++i) batch *= s[i];
  CTensor out(s);
  const int64_t plane = h * w;
  litho::runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(plane));
    for (int64_t b = b0; b < b1; ++b) {
      const int64_t off = b * plane;
      for (int64_t i = 0; i < plane; ++i) {
        buf[static_cast<size_t>(i)] = {x.re[off + i], x.im[off + i]};
      }
      fft2_slice(buf, h, w, inverse);
      for (int64_t i = 0; i < plane; ++i) {
        out.re[off + i] = static_cast<float>(buf[static_cast<size_t>(i)].real());
        out.im[off + i] = static_cast<float>(buf[static_cast<size_t>(i)].imag());
      }
    }
  });
  return out;
}

CTensor rfft2(const Tensor& x) {
  const Shape& s = x.shape();
  const int64_t h = s[s.size() - 2], w = s[s.size() - 1];
  int64_t batch = 1;
  for (size_t i = 0; i + 2 < s.size(); ++i) batch *= s[i];
  const int64_t wh = w / 2 + 1;
  Shape out_shape = s;
  out_shape[out_shape.size() - 1] = wh;
  CTensor out(out_shape);
  const int64_t plane = h * w;
  const int64_t out_plane = h * wh;
  litho::runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(plane));
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t i = 0; i < plane; ++i) {
        buf[static_cast<size_t>(i)] = {x[b * plane + i], 0.0};
      }
      fft2_slice(buf, h, w, false);
      for (int64_t r = 0; r < h; ++r) {
        for (int64_t c = 0; c < wh; ++c) {
          const auto v = buf[static_cast<size_t>(r * w + c)];
          out.re[b * out_plane + r * wh + c] = static_cast<float>(v.real());
          out.im[b * out_plane + r * wh + c] = static_cast<float>(v.imag());
        }
      }
    }
  });
  return out;
}

Tensor irfft2(const CTensor& x, int64_t w) {
  const Shape& s = x.shape();
  const int64_t h = s[s.size() - 2], hw = s[s.size() - 1];
  int64_t batch = 1;
  for (size_t i = 0; i + 2 < s.size(); ++i) batch *= s[i];
  Shape out_shape = s;
  out_shape[out_shape.size() - 1] = w;
  Tensor out(out_shape);
  const int64_t in_plane = h * hw;
  const int64_t out_plane = h * w;
  litho::runtime::parallel_for(batch, [&](int64_t b0, int64_t b1) {
    std::vector<std::complex<double>> buf(static_cast<size_t>(out_plane));
    for (int64_t b = b0; b < b1; ++b) {
      for (int64_t r = 0; r < h; ++r) {
        for (int64_t c = 0; c < hw; ++c) {
          const int64_t idx = b * in_plane + r * hw + c;
          buf[static_cast<size_t>(r * w + c)] = {x.re[idx], x.im[idx]};
        }
        for (int64_t c = hw; c < w; ++c) {
          const int64_t rr = (h - r) % h;
          const int64_t idx = b * in_plane + rr * hw + (w - c);
          buf[static_cast<size_t>(r * w + c)] = {x.re[idx], -x.im[idx]};
        }
      }
      fft2_slice(buf, h, w, true);
      for (int64_t i = 0; i < out_plane; ++i) {
        out[b * out_plane + i] =
            static_cast<float>(buf[static_cast<size_t>(i)].real());
      }
    }
  });
  return out;
}

}  // namespace legacy

namespace {

using litho::Tensor;
using litho::fft::CTensor;

using litho::bench::max_abs_diff;

template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) best = std::min(best, litho::bench::seconds(fn));
  return best;
}

void report(const char* name, double legacy_s, double fast_s) {
  std::printf("%-34s %9.2f ms %9.2f ms %7.2fx\n", name, legacy_s * 1e3,
              fast_s * 1e3, legacy_s / fast_s);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 5;
  litho::bench::banner("bench_fft_micro: plan cache + two-for-one real FFT");
  std::printf("threads=%d reps=%d\n\n",
              litho::runtime::ThreadPool::default_num_threads(), reps);
  std::printf("%-34s %12s %12s %8s\n", "case", "legacy", "planned", "speedup");

  std::mt19937 rng(42);
  const int64_t kB = 4, kN = 512;
  Tensor real = Tensor::randn({kB, kN, kN}, rng);
  CTensor cplx(Tensor::randn({kB, kN, kN}, rng), Tensor::randn({kB, kN, kN}, rng));
  Tensor blue = Tensor::randn({kB, 120, 250}, rng);  // Bluestein both axes

  // Warm the plan cache and the workspace pool so steady-state is measured.
  (void)litho::fft::irfft2(litho::fft::rfft2(real), kN);
  (void)litho::fft::rfft2(blue);

  // Headline: batched 512x512 round trip (the Fourier Unit hot path).
  const double leg_rt = best_seconds(reps, [&] {
    (void)legacy::irfft2(legacy::rfft2(real), kN);
  });
  const double new_rt = best_seconds(reps, [&] {
    (void)litho::fft::irfft2(litho::fft::rfft2(real), kN);
  });
  report("rfft2+irfft2 4x512x512", leg_rt, new_rt);

  const double leg_f = best_seconds(reps, [&] { (void)legacy::rfft2(real); });
  const double new_f = best_seconds(reps, [&] { (void)litho::fft::rfft2(real); });
  report("rfft2 4x512x512", leg_f, new_f);

  const double leg_c = best_seconds(reps, [&] { (void)legacy::fft2(cplx, false); });
  const double new_c = best_seconds(reps, [&] { (void)litho::fft::fft2(cplx, false); });
  report("fft2 4x512x512", leg_c, new_c);

  const double leg_b = best_seconds(reps, [&] { (void)legacy::rfft2(blue); });
  const double new_b = best_seconds(reps, [&] { (void)litho::fft::rfft2(blue); });
  report("rfft2 4x120x250 (Bluestein)", leg_b, new_b);

  const CTensor half = litho::fft::rfft2(real);
  const double new_adj = best_seconds(reps, [&] {
    (void)litho::fft::rfft2_adjoint(half, kN);
    (void)litho::fft::irfft2_adjoint(real);
  });
  std::printf("%-34s %12s %9.2f ms %8s\n", "adjoint pair 4x512x512", "-",
              new_adj * 1e3, "-");

  // Parity + cross-thread determinism of the new kernels.
  const Tensor leg_back = legacy::irfft2(legacy::rfft2(real), kN);
  const Tensor new_back = litho::fft::irfft2(litho::fft::rfft2(real), kN);
  std::printf("\nround-trip |new - legacy| max: %.3g\n",
              max_abs_diff(leg_back, new_back));

  bool deterministic = true;
  {
    litho::runtime::ThreadPool p1(1), p8(8);
    CTensor s1, s8;
    {
      litho::runtime::ScopedPool sp(&p1);
      s1 = litho::fft::rfft2(real);
    }
    {
      litho::runtime::ScopedPool sp(&p8);
      s8 = litho::fft::rfft2(real);
    }
    deterministic = max_abs_diff(s1.re, s8.re) == 0.0 &&
                    max_abs_diff(s1.im, s8.im) == 0.0;
  }
  std::printf("bitwise identical across 1 vs 8 threads: %s\n",
              deterministic ? "yes" : "NO");
  std::printf("plan cache entries: %zu\n", litho::fft::plan_cache_size());
  return deterministic ? 0 : 1;
}
