// bench_graph_exec — op-walk vs compiled static-graph-executor serving
// comparison on the DOINN forward (runtime/graph_exec.h).
//
//   bench_graph_exec [reps] [--quick] [--trace-out trace.json]
//
// Builds two fp32 engines over identical weights — one with the executor
// disabled (per-op walk) and one with it enabled (arena-planned buffers,
// fused GEMM epilogues, per-shape autotuned kernels) — and times
// predict_batch end to end. Exit status is 0 iff every gate holds:
//
//   - executor contours are bitwise identical to the op walk (batched and
//     through the large-tile clip fan-out);
//   - the steady-state replay window performs zero heap allocations (this
//     binary links the counting operator new from bench/alloc_count_new.cpp,
//     observed through the engine.heap_allocs_per_batch gauge);
//   - no shape fell back to the op walk (plan validation passed);
//   - executor speedup >= 1.15x on the batched tile forward (--quick keeps
//     the same floor on the smaller model; headroom is ~2x).
//
// Tracing is enabled while the executor engine compiles and for the warmup
// replays — so a --trace-out file carries the exec.capture / exec.plan /
// exec.replay spans CI validates with scripts/trace_summary.py — then
// disabled for the timed phase. The results are merged into BENCH_gemm.json
// in the working directory as a "graph_exec" section (run bench_gemm_micro
// first to get the GEMM sections; this bench only rewrites its own section).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/doinn.h"
#include "runtime/alloc_hooks.h"
#include "runtime/engine.h"
#include "runtime/metrics_registry.h"
#include "runtime/trace.h"

namespace {

using litho::Tensor;
using litho::bench::max_abs_diff;
namespace core = litho::core;
namespace runtime = litho::runtime;

struct Row {
  std::string op;
  std::string shape;
  double legacy_ms;  // op walk
  double new_ms;     // graph executor
};

std::vector<Row> g_rows;

void report(const std::string& op, const std::string& shape, double legacy_s,
            double new_s) {
  g_rows.push_back({op, shape, legacy_s * 1e3, new_s * 1e3});
  std::printf("%-26s %-18s %9.2f ms %9.2f ms %7.2fx\n", op.c_str(),
              shape.c_str(), legacy_s * 1e3, new_s * 1e3, legacy_s / new_s);
}

template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    best = std::min(best, litho::bench::seconds(fn));
  }
  return best;
}

core::DoinnConfig bench_config(bool quick) {
  core::DoinnConfig cfg = core::DoinnConfig::small();  // 128 px tile
  if (quick) {
    cfg.tile = 64;
    cfg.modes = 4;
    cfg.gp_channels = 4;
  }
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  std::mt19937 rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.numel())) == 0;
}

// -- BENCH_gemm.json merge ------------------------------------------------
// bench_gemm_micro owns the file (rewrites it wholesale); this bench only
// splices its own "graph_exec" section in before the final brace, replacing
// any section a previous run left. A missing or non-object file (e.g. the
// pre-sectioned flat-array format) is replaced by a fresh object holding
// just this section.

std::string slurp(const char* path) {
  FILE* f = std::fopen(path, "rb");
  if (!f) return "";
  std::string s;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
  std::fclose(f);
  return s;
}

void merge_graph_exec_section(const char* path, const std::string& section) {
  std::string doc = slurp(path);
  const size_t prior = doc.find("\"graph_exec\"");
  if (prior != std::string::npos) {
    const size_t comma = doc.rfind(',', prior);
    doc.resize(comma == std::string::npos ? 0 : comma);
    doc += "\n}\n";
  }
  const size_t first = doc.find_first_not_of(" \t\r\n");
  const size_t close = doc.find_last_of('}');
  std::string out;
  if (first == std::string::npos || doc[first] != '{' ||
      close == std::string::npos || close <= first) {
    out = "{\n  \"graph_exec\": " + section + "\n}\n";
  } else {
    const size_t end = doc.find_last_not_of(" \t\r\n", close - 1);
    out = doc.substr(0, end + 1);
    if (doc[end] != '{') out += ",";
    out += "\n  \"graph_exec\": " + section + "\n}\n";
  }
  FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

std::string json_rows() {
  std::string s;
  char buf[256];
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::snprintf(buf, sizeof buf,
                  "      {\"op\": \"%s\", \"shape\": \"%s\", "
                  "\"legacy_ms\": %.3f, \"new_ms\": %.3f, "
                  "\"speedup\": %.3f}%s\n",
                  r.op.c_str(), r.shape.c_str(), r.legacy_ms, r.new_ms,
                  r.legacy_ms / r.new_ms, i + 1 < g_rows.size() ? "," : "");
    s += buf;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int reps = 5;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      reps = 2;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      reps = std::atoi(argv[i]);
    }
  }

  litho::bench::banner(
      "bench_graph_exec: op walk vs compiled static-graph executor");
  const core::DoinnConfig cfg = bench_config(quick);
  const int64_t tile = cfg.tile;
  constexpr int kBatch = 8;
  std::printf("tile=%lld threads=%d reps=%d%s\n\n",
              static_cast<long long>(tile),
              runtime::ThreadPool::default_num_threads(), reps,
              quick ? " (quick)" : "");

  bool ok = true;
  if (runtime::heap_alloc_count() == 0) {
    std::printf("counting operator new not linked -- rebuild\n");
    return 1;
  }

  runtime::EngineOptions walk_opts;
  walk_opts.use_graph_executor = false;
  runtime::InferenceEngine walk(cfg, /*seed=*/42, walk_opts);

  // Compile the executor engine (and its first replays) under tracing so the
  // trace file carries the exec.capture / exec.plan / exec.replay spans.
  runtime::trace::reset();
  runtime::trace::set_enabled(true);
  runtime::EngineOptions exec_opts;
  exec_opts.use_graph_executor = true;
  exec_opts.autotune = true;
  const double build_s = litho::bench::seconds(
      [&] { runtime::InferenceEngine probe(cfg, /*seed=*/42, exec_opts); });
  std::printf("executor engine build (capture+plan+autotune): %.1f ms\n",
              build_s * 1e3);
  runtime::InferenceEngine exec(cfg, /*seed=*/42, exec_opts);

  std::vector<Tensor> masks;
  for (int i = 0; i < kBatch; ++i) {
    masks.push_back(random_mask(tile, 100 + static_cast<uint32_t>(i)));
  }
  const Tensor large_mask = random_mask(tile * 3 / 2, 7);  // 2x2 clip grid

  // Traced warmups: builds the batch-8 plan and replays it once.
  const std::vector<Tensor> exec_batch = exec.predict_batch(masks);
  const Tensor exec_large = exec.predict(large_mask);
  runtime::trace::set_enabled(false);

  // -- Parity gates -------------------------------------------------------
  const std::vector<Tensor> walk_batch = walk.predict_batch(masks);
  bool bitwise = walk_batch.size() == exec_batch.size();
  for (size_t i = 0; bitwise && i < walk_batch.size(); ++i) {
    bitwise = bitwise_equal(walk_batch[i], exec_batch[i]);
  }
  std::printf("batched contours bitwise identical to op walk: %s\n",
              bitwise ? "yes" : "NO");
  ok = ok && bitwise;

  const Tensor walk_large = walk.predict(large_mask);
  const bool large_bitwise = bitwise_equal(walk_large, exec_large);
  std::printf("large-tile contour bitwise identical to op walk: %s\n",
              large_bitwise ? "yes" : "NO");
  ok = ok && large_bitwise;

  const int64_t fallbacks = exec.plan_fallbacks();
  std::printf("plan validation fallbacks: %lld (== 0: %s)\n",
              static_cast<long long>(fallbacks), fallbacks == 0 ? "yes" : "NO");
  ok = ok && fallbacks == 0;

  // -- Zero-allocation steady state ---------------------------------------
  for (int i = 0; i < 2; ++i) exec.predict_batch(masks);  // settle pools
  auto& allocs_gauge =
      runtime::MetricsRegistry::global().gauge("engine.heap_allocs_per_batch");
  int64_t steady_allocs = 0;
  for (int i = 0; i < 3; ++i) {
    exec.predict_batch(masks);
    steady_allocs = std::max(steady_allocs, allocs_gauge.value());
  }
  std::printf("steady-state replay heap allocations: %lld (== 0: %s)\n",
              static_cast<long long>(steady_allocs),
              steady_allocs == 0 ? "yes" : "NO");
  ok = ok && steady_allocs == 0;

  // -- Timing -------------------------------------------------------------
  std::printf("\n%-26s %-18s %12s %12s %8s\n", "case", "shape", "op walk",
              "executor", "speedup");
  char shape[64];
  walk.predict_batch({masks[0]});  // warm the batch-1 walk path
  exec.predict_batch({masks[0]});
  std::snprintf(shape, sizeof shape, "1x1x%lldx%lld",
                static_cast<long long>(tile), static_cast<long long>(tile));
  report("forward tile batch1", shape,
         best_seconds(reps, [&] { walk.predict_batch({masks[0]}); }),
         best_seconds(reps, [&] { exec.predict_batch({masks[0]}); }));

  std::snprintf(shape, sizeof shape, "%dx1x%lldx%lld", kBatch,
                static_cast<long long>(tile), static_cast<long long>(tile));
  const double walk_s = best_seconds(reps, [&] { walk.predict_batch(masks); });
  const double exec_s = best_seconds(reps, [&] { exec.predict_batch(masks); });
  report("forward tile batch8", shape, walk_s, exec_s);

  std::snprintf(shape, sizeof shape, "%lldx%lld (2x2 clips)",
                static_cast<long long>(large_mask.size(0)),
                static_cast<long long>(large_mask.size(1)));
  report("predict_large", shape,
         best_seconds(reps, [&] { walk.predict(large_mask); }),
         best_seconds(reps, [&] { exec.predict(large_mask); }));

  const double headline = walk_s / exec_s;
  const double gate = 1.15;
  std::printf(
      "\nexecutor speedup (batch%d tile forward): %.2fx (>= %.2fx: %s)\n",
      kBatch, headline, gate, headline >= gate ? "yes" : "NO");
  ok = ok && headline >= gate;

  const int64_t arena_bytes =
      runtime::MetricsRegistry::global().gauge("engine.arena_bytes").value();
  std::printf("arena bytes (all plans): %lld\n",
              static_cast<long long>(arena_bytes));

  // -- Artifacts ----------------------------------------------------------
  char gates[512];
  std::snprintf(gates, sizeof gates,
                "    \"gates\": {\"executor_speedup\": %.3f, "
                "\"executor_min\": %.2f, \"steady_state_heap_allocs\": %lld, "
                "\"bitwise\": %s, \"plan_fallbacks\": %lld, "
                "\"arena_bytes\": %lld}\n",
                headline, gate, static_cast<long long>(steady_allocs),
                bitwise && large_bitwise ? "true" : "false",
                static_cast<long long>(fallbacks),
                static_cast<long long>(arena_bytes));
  merge_graph_exec_section(
      "BENCH_gemm.json",
      std::string("{\n    \"rows\": [\n") + json_rows() + "    ],\n" + gates +
          "  }");
  std::printf("merged graph_exec section into BENCH_gemm.json (%zu rows)\n",
              g_rows.size());

  if (!trace_out.empty()) {
    runtime::trace::write_json(trace_out);
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return ok ? 0 : 1;
}
