// Design-choice ablation (paper Section 3.1.1): cost of DOINN's reduced
// single Fourier Unit (eq. (11), FFT before channel lift -> 1 forward FFT +
// C inverse FFTs) versus the baseline stacked-FNO Fourier layers (eq. (10),
// per-channel forward AND inverse FFTs in every unit).
//
// Uses google-benchmark. Expected shape: the optimized unit saves ~50% of
// the FFT work of a single baseline unit and is several times cheaper than
// the stacked configuration.
#include <benchmark/benchmark.h>

#include "core/experiments.h"
#include "models/fno_baseline.h"

using namespace litho;

namespace {

constexpr int64_t kTile = 128;

Tensor input_mask() {
  std::mt19937 rng(7);
  return Tensor::rand({1, 1, kTile, kTile}, rng);
}

void BM_OptimizedFourierUnit(benchmark::State& state) {
  std::mt19937 rng(1);
  core::Doinn model(core::DoinnConfig::small(), rng);
  model.set_training(false);
  Tensor x = input_mask();
  for (auto _ : state) {
    ag::Variable out = model.gp_features(ag::Variable(x.clone(), false));
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetLabel("eq.(11): 1 fwd FFT + C inv FFTs, single unit");
}

void BM_BaselineFnoUnits(benchmark::State& state) {
  const int64_t units = state.range(0);
  models::FnoConfig cfg;
  cfg.num_units = units;
  std::mt19937 rng(1);
  models::FnoBaseline model(cfg, rng);
  model.set_training(false);
  Tensor x = input_mask();
  for (auto _ : state) {
    ag::Variable out =
        model.spectral_features(ag::Variable(x.clone(), false));
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetLabel("eq.(10): C fwd + C inv FFTs per unit");
}

void BM_FftCountAccounting(benchmark::State& state) {
  // Not a timing benchmark: reports the analytic FFT counts the paper's
  // ~50% claim rests on (C = 8 channels here, 16 in the paper).
  const int64_t c = core::DoinnConfig::small().gp_channels;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c);
  }
  state.counters["optimized_unit_ffts"] = static_cast<double>(1 + c);
  state.counters["baseline_unit_ffts"] = static_cast<double>(2 * c);
  state.counters["saving_fraction"] =
      1.0 - static_cast<double>(1 + c) / static_cast<double>(2 * c);
}

}  // namespace

BENCHMARK(BM_OptimizedFourierUnit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineFnoUnits)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FftCountAccounting);

BENCHMARK_MAIN();
