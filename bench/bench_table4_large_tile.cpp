// Regenerates paper Table 4: "Large Tile Simulation Scheme".
//
// A DOINN trained on 4 um^2 tiles (ISPD-2019 (L)) is evaluated on ~67 um^2
// via tiles (4x the training side):
//   "DOINN"    — feed the whole large tile through the default pipeline;
//   "DOINN-LT" — the half-overlap / core-stitching scheme of Section 3.2.
//
// Scale note (see EXPERIMENTS.md): at this reproduction's raster the FULL
// DOINN's accuracy is carried mostly by the convolutional LP path, which is
// size-invariant — so the full model barely degrades on large tiles. The
// paper's degradation mechanism lives in the Fourier Unit, whose truncated
// modes are tied to the training tile size. To demonstrate it, the bench
// also reports the GP-reliant ablation variant (LP disabled), where the
// spectral mismatch appears in force and the LT scheme must recover it —
// the paper's Table 4 contrast.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "core/large_tile.h"

using namespace litho;

namespace {

struct Row {
  core::SegmentationMetrics plain;
  core::SegmentationMetrics lt;
};

Row evaluate(core::Doinn& model, const std::vector<Tensor>& masks,
             const std::vector<Tensor>& goldens) {
  core::LargeTilePredictor lt(model);
  std::vector<core::SegmentationMetrics> plain_all, lt_all;
  for (size_t i = 0; i < masks.size(); ++i) {
    Tensor plain = lt.predict_plain(masks[i]);
    plain.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
    plain_all.push_back(core::evaluate_contours(plain, goldens[i]));
    Tensor stitched = lt.predict(masks[i]);
    stitched.apply_([](float v) { return v >= 0.f ? 1.f : 0.f; });
    lt_all.push_back(core::evaluate_contours(stitched, goldens[i]));
  }
  return {core::average(plain_all), core::average(lt_all)};
}

}  // namespace

int main() {
  bench::banner("Table 4: Large Tile Simulation Scheme (ISPD-2019-LT)");

  const core::Benchmark bench = core::ispd2019(core::Resolution::kLow);
  const auto& sim = core::simulator_for(bench.pixel_nm());
  const int64_t large_px = 4 * bench.tile_px();  // 512 px = 8.2 um side

  std::vector<Tensor> masks, goldens;
  for (uint32_t seed = 0; seed < 4; ++seed) {
    masks.push_back(core::generate_mask(sim, core::DatasetKind::kViaSparse,
                                        large_px, 7100 + seed,
                                        /*opc_iterations=*/4));
    goldens.push_back(sim.simulate(masks.back()));
    std::printf("  tile %u prepared\n", seed);
    std::fflush(stdout);
  }

  auto full_base = core::trained_model("DOINN", bench);
  auto* full = dynamic_cast<core::Doinn*>(full_base.get());
  const Row full_row = evaluate(*full, masks, goldens);

  // GP-reliant variant (LP path disabled): the Fourier Unit carries the
  // prediction, exposing the spectral size mismatch of the paper.
  auto gp_model = core::trained_doinn_variant(/*use_ir=*/true,
                                              /*use_lp=*/false,
                                              /*use_bypass=*/false, bench);
  const Row gp_row = evaluate(*gp_model, masks, goldens);

  std::printf("\n%-24s %8s %8s\n", "ISPD-2019-LT", "mPA%", "mIOU%");
  std::printf("%-24s %8.2f %8.2f\n", "DOINN (full)", 100 * full_row.plain.mpa,
              100 * full_row.plain.miou);
  std::printf("%-24s %8.2f %8.2f\n", "DOINN-LT (full)", 100 * full_row.lt.mpa,
              100 * full_row.lt.miou);
  std::printf("%-24s %8.2f %8.2f  <- spectral mismatch\n", "DOINN (GP-reliant)",
              100 * gp_row.plain.mpa, 100 * gp_row.plain.miou);
  std::printf("%-24s %8.2f %8.2f  <- recovered by the LT scheme\n",
              "DOINN-LT (GP-reliant)", 100 * gp_row.lt.mpa,
              100 * gp_row.lt.miou);
  return 0;
}
