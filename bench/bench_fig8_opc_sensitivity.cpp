// Regenerates paper Figure 8: lithography modeling performance on subtle
// perturbations — mIOU of DOINN and UNet across 24 OPC iterations of a
// metal-layer design.
//
// Both models are trained on OPC'ed masks (late iterations), so accuracy is
// expected to be weaker at early iterations (masks close to the raw design)
// and to climb as OPC converges — with DOINN above UNet throughout thanks
// to the Fourier-Unit inductive bias (the paper's Figure 8 shape).
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"
#include "layout/layout.h"
#include "opc/opc.h"

using namespace litho;

int main() {
  bench::banner("Figure 8: mIOU across 24 OPC iterations (metal layer)");

  const core::Benchmark bench = core::iccad2013(core::Resolution::kLow);
  auto doinn = core::trained_model("DOINN", bench);
  auto unet = core::trained_model("UNet", bench);

  const auto& sim = core::simulator_for(bench.pixel_nm());
  // One representative metal clip run through 24 OPC iterations.
  layout::MetalLayerGenerator::Params p;
  p.clip_nm =
      bench.tile_px() * static_cast<int64_t>(sim.config().pixel_nm);
  layout::MetalLayerGenerator gen(p, layout::DesignRules{64, 64});
  std::mt19937 rng(2022);
  const layout::Clip clip = gen.generate(rng);

  opc::OpcEngine engine(sim, opc::OpcParams{});
  const auto iterations = engine.run(clip, 24);

  std::printf("%5s %12s %12s %12s %14s\n", "iter", "DOINN mIOU", "UNet mIOU",
              "meanEPE(nm)", "(golden fg px)");
  for (size_t it = 0; it < iterations.size(); ++it) {
    const Tensor& mask = iterations[it].mask;
    const Tensor golden = sim.simulate(mask);
    const Tensor pd = core::predict_contour(*doinn, mask);
    const Tensor pu = core::predict_contour(*unet, mask);
    const double md = core::evaluate_contours(pd, golden).miou;
    const double mu = core::evaluate_contours(pu, golden).miou;
    std::printf("%5zu %12.4f %12.4f %12.2f %14.0f\n", it, md, mu,
                iterations[it].mean_abs_epe, golden.sum());
    std::fflush(stdout);
  }
  return 0;
}
