// Regenerates paper Table 3: the DOINN component ablation on ICCAD-2013 (L).
//
//   1. GP only            (Fourier Unit + transposed-conv upsampling)
//   2. GP + IR            (adds the four single-stride refinement convs)
//   3. GP + IR + LP       (adds the convolutional local-perception path)
//   4. GP + IR + LP + ByPass (full DOINN)
//
// Expected shape: each row improves mPA / mIOU over the previous one.
#include <cstdio>

#include "bench_util.h"
#include "core/experiments.h"

using namespace litho;

int main() {
  bench::banner("Table 3: Ablation Study (ICCAD-2013 (L))");
  std::printf("%2s | %-3s %-3s %-3s %-6s | %7s %7s\n", "ID", "GP", "IR", "LP",
              "ByPass", "mPA%", "mIOU%");
  std::printf("---------------------------------------------\n");

  const core::Benchmark bench = core::iccad2013(core::Resolution::kLow);
  const core::ContourDataset test = core::test_set(bench);

  struct Row {
    bool ir, lp, bypass;
  };
  const Row rows[] = {
      {false, false, false},
      {true, false, false},
      {true, true, false},
      {true, true, true},
  };
  int id = 1;
  for (const Row& r : rows) {
    auto model = core::trained_doinn_variant(r.ir, r.lp, r.bypass, bench);
    const core::SegmentationMetrics m = core::evaluate_model(*model, test);
    std::printf("%2d | %-3s %-3s %-3s %-6s | %7.2f %7.2f\n", id++, "x",
                r.ir ? "x" : " ", r.lp ? "x" : " ", r.bypass ? "x" : " ",
                100 * m.mpa, 100 * m.miou);
    std::fflush(stdout);
  }
  return 0;
}
