// Shared helpers for the benchmark binaries (table formatting, timing,
// tensor comparison).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "tensor/tensor.h"

namespace litho::bench {

/// Prints the standard header naming the paper artifact being regenerated.
inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds spent in @p fn.
template <typename F>
double seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Maximum absolute elementwise difference, used by the identity gates.
/// Shape mismatch returns +inf (never bitwise identical) instead of
/// reading out of bounds.
inline double max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

}  // namespace litho::bench
