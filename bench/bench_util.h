// Shared helpers for the benchmark binaries (table formatting, timing).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace litho::bench {

/// Prints the standard header naming the paper artifact being regenerated.
inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds spent in @p fn.
template <typename F>
double seconds(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace litho::bench
