// Micro-benchmarks of the substrates (google-benchmark): FFT, GEMM,
// convolution and the golden SOCS simulator. These bound the cost models
// used to size the experiments.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "fft/fft.h"
#include "litho/simulator.h"
#include "tensor/tensor.h"

using namespace litho;

namespace {

void BM_Fft2(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::mt19937 rng(1);
  fft::CTensor x(Tensor::rand({n, n}, rng), Tensor({n, n}));
  for (auto _ : state) {
    fft::CTensor y = fft::fft2(x, false);
    benchmark::DoNotOptimize(y.re.data());
  }
  state.SetComplexityN(n);
}

void BM_Rfft2RoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::mt19937 rng(2);
  Tensor x = Tensor::rand({n, n}, rng);
  for (auto _ : state) {
    Tensor y = fft::irfft2(fft::rfft2(x), n);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::mt19937 rng(3);
  Tensor a = Tensor::rand({n, n}, rng);
  Tensor b = Tensor::rand({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n * 2);
}

void BM_Conv2d(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::mt19937 rng(4);
  ag::Variable x(Tensor::rand({1, 8, n, n}, rng), false);
  ag::Variable w(Tensor::rand({8, 8, 3, 3}, rng), false);
  for (auto _ : state) {
    ag::Variable y = ag::conv2d(x, w, ag::Variable(), 1, 1);
    benchmark::DoNotOptimize(y.value().data());
  }
}

void BM_SocsAerial(benchmark::State& state) {
  const int64_t n = state.range(0);
  optics::OpticalConfig cfg;
  cfg.pixel_nm = 16.0;
  cfg.kernel_grid = 48;
  cfg.kernel_count = 12;
  static optics::LithoSimulator sim(cfg, optics::compute_socs_kernels(cfg));
  std::mt19937 rng(5);
  Tensor mask = Tensor::rand({n, n}, rng);
  (void)sim.aerial(mask);  // warm spectra cache
  for (auto _ : state) {
    Tensor a = sim.aerial(mask);
    benchmark::DoNotOptimize(a.data());
  }
}

}  // namespace

BENCHMARK(BM_Fft2)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Rfft2RoundTrip)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Conv2d)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SocsAerial)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
