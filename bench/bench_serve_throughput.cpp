// Serving throughput of the parallel inference runtime (ISSUE 1): masks/sec
// for the batched no-grad path (InferenceEngine::predict_batch) and the
// parallel large-tile path (predict_large) at 1, 2 and N threads, where N is
// ThreadPool::default_num_threads() (DOINN_NUM_THREADS env var, else
// hardware concurrency).
//
// Output is one JSON document on stdout so CI and scripts can track the
// scaling curve; the acceptance target is >= 2x large-tile speedup at
// 4 threads on hardware that has them.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/engine.h"

using namespace litho;

namespace {

core::DoinnConfig bench_config() {
  core::DoinnConfig cfg = core::DoinnConfig::small();  // 128 px tile
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  std::mt19937 rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

/// Best-of-3 masks/sec for @p fn processing @p masks_per_run masks.
template <typename F>
double masks_per_second(int64_t masks_per_run, F&& fn) {
  fn();  // warm-up
  double best = 1e30;
  for (int i = 0; i < 3; ++i) best = std::min(best, bench::seconds(fn));
  return static_cast<double>(masks_per_run) / best;
}

}  // namespace

int main() {
  const core::DoinnConfig cfg = bench_config();
  const int hw_threads = runtime::ThreadPool::default_num_threads();
  std::vector<int> thread_counts = {1, 2, hw_threads};
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());
  if (thread_counts.size() > 1 &&
      thread_counts.back() < thread_counts[thread_counts.size() - 2]) {
    thread_counts.pop_back();  // hw_threads == 1: already measured
  }

  constexpr int64_t kBatch = 8;
  std::vector<Tensor> batch;
  for (uint32_t s = 0; s < kBatch; ++s) {
    batch.push_back(random_mask(cfg.tile, s));
  }
  const Tensor large = random_mask(2 * cfg.tile, 99);

  struct Row {
    std::string mode;
    int threads;
    double masks_per_s;
  };
  std::vector<Row> rows;
  for (int threads : thread_counts) {
    runtime::InferenceEngine engine(cfg, /*seed=*/42,
                                    runtime::EngineOptions{threads});
    rows.push_back({"predict_batch", threads,
                    masks_per_second(kBatch, [&] {
                      (void)engine.predict_batch(batch);
                    })});
    rows.push_back({"predict_large", threads, masks_per_second(1, [&] {
                      (void)engine.predict_large(large);
                    })});
    std::fprintf(stderr, "measured %d thread(s)\n", threads);
  }

  auto baseline = [&rows](const std::string& mode) {
    for (const Row& r : rows) {
      if (r.mode == mode && r.threads == 1) return r.masks_per_s;
    }
    return 0.0;
  };
  std::printf("{\n");
  std::printf("  \"bench\": \"serve_throughput\",\n");
  std::printf("  \"tile_px\": %lld,\n", static_cast<long long>(cfg.tile));
  std::printf("  \"large_tile_px\": %lld,\n",
              static_cast<long long>(2 * cfg.tile));
  std::printf("  \"batch_size\": %lld,\n", static_cast<long long>(kBatch));
  std::printf("  \"hardware_threads\": %d,\n", hw_threads);
  std::printf("  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double base = baseline(r.mode);
    std::printf("    {\"mode\": \"%s\", \"threads\": %d, "
                "\"masks_per_s\": %.3f, \"speedup_vs_1\": %.2f}%s\n",
                r.mode.c_str(), r.threads, r.masks_per_s,
                base > 0.0 ? r.masks_per_s / base : 1.0,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
