// Serving throughput: dynamic-batching scheduler vs the serial request
// loop, plus the engine's thread-scaling curve and the tracing-overhead
// gate.
//
//   bench_serve_throughput [--quick] [--trace-out trace.json]
//
// The headline comparison runs 8 closed-loop clients (each submits one
// request, waits for the contour, submits the next) against the same
// InferenceEngine two ways:
//
//   serial    — every client calls engine.predict() directly, one forward
//               pass per request: the pre-scheduler doinn_serve model.
//   scheduled — every client goes through runtime::Scheduler, whose
//               dispatcher coalesces concurrent requests into
//               predict_batch calls.
//
// Both modes process the same masks; the benchmark verifies the scheduled
// results are bitwise identical to the serial ones before timing counts.
//
// Pass/fail: in full mode with >= 4 hardware threads the batched forward
// amortizes across the pool and scheduled throughput must be >= 2x serial.
// On smaller machines (1-2 cores) total compute is the bound and batching
// can only break even, so the gate is "no regression" (>= 0.85x, leaving
// margin for timer noise). --quick (the CI smoke mode, which also shrinks
// the model and request count) always uses the no-regression gate: shared
// runners have noisy, heterogeneous CPU budgets, and the smoke job's
// contract is "batching never loses throughput", not a speedup target.
// The measured ratio and the applied gate are both recorded in
// BENCH_serve.json for cross-PR tracking.
//
// A third scheduled pass then runs with tracing enabled. It must stay
// bitwise identical (the determinism contract: tracing only observes
// timestamps) and its throughput gates the instrumentation overhead:
// >= 0.95x the untraced scheduled pass in full mode, >= 0.85x in --quick
// (timer noise dominates tiny runs). The recorded spans also yield the
// per-stage latency breakdown (count/p50/p99 per span name) written to
// BENCH_serve.json and, with --trace-out, the full Chrome Trace Event
// file that CI feeds through scripts/trace_summary.py.
//
// A fourth pass runs the same closed-loop clients through the TCP front
// end (src/net/server.h over loopback, adaptive batching on): every
// contour must be byte-identical on the wire to the quantized serial
// result, throughput must hold >= 0.5x serial (framing + loopback on top
// of the same compute), and the closed-loop p99 latency gates against an
// SLO of 5x the ideal closed-loop round trip (kConcurrency / serial rate)
// with a 100 ms floor for tiny quick-mode runs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "runtime/engine.h"
#include "runtime/percentile.h"
#include "runtime/scheduler.h"
#include "runtime/trace.h"

using namespace litho;

namespace {

constexpr int kConcurrency = 8;

core::DoinnConfig bench_config(bool quick) {
  core::DoinnConfig cfg = core::DoinnConfig::small();  // 128 px tile
  if (quick) {
    cfg.tile = 64;
    cfg.modes = 4;
    cfg.gp_channels = 4;
  }
  return cfg;
}

Tensor random_mask(int64_t side, uint32_t seed) {
  std::mt19937 rng(seed);
  Tensor mask = Tensor::rand({side, side}, rng);
  mask.apply_([](float v) { return v >= 0.6f ? 1.f : 0.f; });
  return mask;
}

using bench::max_abs_diff;

/// Per-span-name latency summary aggregated from the recorded trace.
struct StageRow {
  std::string name;
  int64_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

/// Groups every recorded span (complete and async) by name and summarizes
/// durations. Sorted by total time descending, so the breakdown reads as
/// "where did the wall clock go". @p dropped returns how many events ring
/// wrap overwrote — nonzero means the breakdown covers a trailing window,
/// not the whole pass.
std::vector<StageRow> stage_breakdown(uint64_t& dropped) {
  std::map<std::string, std::vector<double>> by_name;
  dropped = 0;
  for (const runtime::trace::ThreadEvents& te : runtime::trace::snapshot()) {
    dropped += te.dropped;
    for (const runtime::trace::Event& ev : te.events) {
      if (ev.kind == runtime::trace::Kind::kInstant) continue;
      by_name[ev.name].push_back(static_cast<double>(ev.dur_ns) / 1e6);
    }
  }
  std::vector<StageRow> rows;
  for (auto& [name, durs] : by_name) {
    StageRow row;
    row.name = name;
    row.count = static_cast<int64_t>(durs.size());
    for (double d : durs) row.total_ms += d;
    row.p50_ms = runtime::nearest_rank_percentile(durs, 0.50);
    row.p99_ms = runtime::nearest_rank_percentile(durs, 0.99);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const StageRow& a, const StageRow& b) {
    return a.total_ms > b.total_ms;
  });
  return rows;
}

/// Runs kConcurrency closed-loop clients over masks[0..R); each client
/// claims the next unprocessed index, runs process(i), and stores the
/// result. Returns requests per second.
template <typename Process>
double closed_loop(const std::vector<Tensor>& masks,
                   std::vector<Tensor>& results, Process&& process) {
  std::atomic<size_t> next{0};
  const double secs = bench::seconds([&] {
    std::vector<std::thread> clients;
    clients.reserve(kConcurrency);
    for (int c = 0; c < kConcurrency; ++c) {
      clients.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= masks.size()) return;
          results[i] = process(i);
        }
      });
    }
    for (auto& t : clients) t.join();
  });
  return static_cast<double>(masks.size()) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    }
  }
  const core::DoinnConfig cfg = bench_config(quick);
  const int hw_threads = runtime::ThreadPool::default_num_threads();
  const size_t requests = quick ? 32 : 64;

  std::vector<Tensor> masks;
  for (uint32_t s = 0; s < requests; ++s) {
    masks.push_back(random_mask(cfg.tile, s));
  }

  runtime::InferenceEngine engine(cfg, /*seed=*/42, runtime::EngineOptions{});
  (void)engine.predict(masks[0]);  // warm plan cache + workspace pools

  // -- serial: one forward per request, clients call the engine directly.
  std::vector<Tensor> serial_results(requests);
  const double serial_rps = closed_loop(
      masks, serial_results, [&](size_t i) { return engine.predict(masks[i]); });
  std::fprintf(stderr, "serial: %.2f req/s\n", serial_rps);

  // -- scheduled: same clients, coalesced through the dispatcher.
  runtime::SchedulerOptions sched_opts;
  sched_opts.max_batch = kConcurrency;
  sched_opts.max_delay_us = 2000;
  sched_opts.queue_cap = 4 * kConcurrency;
  runtime::Scheduler scheduler(engine, sched_opts);
  std::vector<Tensor> scheduled_results(requests);
  const double scheduled_rps =
      closed_loop(masks, scheduled_results,
                  [&](size_t i) { return scheduler.submit(masks[i]).get(); });
  const runtime::SchedulerStats sched = scheduler.stats();
  scheduler.shutdown();
  std::fprintf(stderr, "scheduled: %.2f req/s (%lld batches, %.2f avg size)\n",
               scheduled_rps, static_cast<long long>(sched.batches),
               sched.batches > 0
                   ? static_cast<double>(sched.batched_requests) /
                         static_cast<double>(sched.batches)
                   : 0.0);

  // Bitwise identity: coalescing must not change a single bit.
  bool identical = true;
  for (size_t i = 0; i < requests; ++i) {
    if (max_abs_diff(serial_results[i], scheduled_results[i]) != 0.f) {
      std::fprintf(stderr, "FAIL: request %zu differs between serial and "
                           "scheduled\n", i);
      identical = false;
    }
  }

  // -- traced: the scheduled pass again with span recording on. Gates the
  // instrumentation overhead and yields the per-stage breakdown.
  runtime::trace::reset();
  runtime::trace::set_enabled(true);
  double traced_rps;
  std::vector<StageRow> stages;
  uint64_t trace_dropped = 0;
  {
    runtime::Scheduler traced_scheduler(engine, sched_opts);
    std::vector<Tensor> traced_results(requests);
    traced_rps = closed_loop(masks, traced_results, [&](size_t i) {
      return traced_scheduler.submit(masks[i]).get();
    });
    traced_scheduler.shutdown();  // quiesce before reading the rings
    runtime::trace::set_enabled(false);
    stages = stage_breakdown(trace_dropped);
    for (size_t i = 0; i < requests; ++i) {
      if (max_abs_diff(serial_results[i], traced_results[i]) != 0.f) {
        std::fprintf(stderr, "FAIL: request %zu differs with tracing "
                             "enabled\n", i);
        identical = false;
      }
    }
  }
  const double tracing_overhead = traced_rps / scheduled_rps;
  std::fprintf(stderr, "traced: %.2f req/s (%.3fx of untraced)\n", traced_rps,
               tracing_overhead);
  if (!stages.empty()) {
    std::fprintf(stderr, "%-24s %8s %10s %10s %10s\n", "stage", "count",
                 "p50 ms", "p99 ms", "total ms");
    for (const StageRow& s : stages) {
      std::fprintf(stderr, "%-24s %8lld %10.3f %10.3f %10.1f\n",
                   s.name.c_str(), static_cast<long long>(s.count), s.p50_ms,
                   s.p99_ms, s.total_ms);
    }
  }
  if (trace_dropped > 0) {
    std::fprintf(stderr,
                 "note: ring wrap dropped %llu events — the breakdown covers "
                 "a trailing window (raise DOINN_TRACE_BUFFER for full "
                 "coverage)\n",
                 static_cast<unsigned long long>(trace_dropped));
  }
  if (!trace_out.empty()) runtime::trace::write_json(trace_out);

  // -- socket: the same closed loop through the TCP front end. Measures
  // the full ingest -> scheduler -> completion -> write path plus framing
  // and loopback TCP, and gates the closed-loop p99 against the SLO.
  double socket_rps = 0.0;
  double socket_p99_ms = 0.0;
  bool socket_identical = true;
  int64_t socket_busy = 0;
  {
    runtime::SchedulerOptions sock_opts = sched_opts;
    sock_opts.adaptive_delay = true;
    runtime::Scheduler sock_scheduler(engine, sock_opts);
    net::Server server(sock_scheduler, net::ServerOptions{});
    std::thread loop([&] { server.run(); });

    std::vector<Tensor> socket_results(requests);
    std::vector<double> latencies_ms(requests, 0.0);
    std::atomic<size_t> next{0};
    std::atomic<int64_t> busy{0};
    const double secs = bench::seconds([&] {
      std::vector<std::thread> clients;
      clients.reserve(kConcurrency);
      for (int c = 0; c < kConcurrency; ++c) {
        clients.emplace_back([&] {
          net::Client client("127.0.0.1", server.port());
          for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= masks.size()) return;
            const auto t0 = std::chrono::steady_clock::now();
            for (;;) {
              client.send_predict(i + 1, masks[i]);
              net::Reply reply = client.read_reply();
              if (reply.type == net::FrameType::kBusy) {
                // Closed-loop in-flight fits the queue, so BUSY is rare
                // (a dispatch racing the burst); retry after a beat.
                busy.fetch_add(1);
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
              }
              socket_results[i] = std::move(reply.contour);
              break;
            }
            latencies_ms[i] =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
          }
        });
      }
      for (auto& t : clients) t.join();
    });
    server.stop();
    loop.join();
    sock_scheduler.shutdown();
    socket_rps = static_cast<double>(requests) / secs;
    socket_busy = busy.load();
    socket_p99_ms = runtime::nearest_rank_percentile(latencies_ms, 0.99);

    // Wire identity: the socket contour re-encodes to exactly the bytes
    // the serial result would produce — the PGM a socket client writes is
    // byte-identical to manifest mode's output file.
    for (size_t i = 0; i < requests; ++i) {
      std::vector<uint8_t> socket_wire, serial_wire;
      net::encode_image(socket_results[i], socket_wire);
      net::encode_image(serial_results[i], serial_wire);
      if (socket_wire != serial_wire) {
        std::fprintf(stderr, "FAIL: request %zu differs between socket and "
                             "serial\n", i);
        socket_identical = false;
      }
    }
  }
  // SLO: 5x the ideal closed-loop round trip, floored at 100 ms so tiny
  // quick-mode runs don't gate on scheduler wakeup granularity.
  const double socket_slo_ms = std::max(
      100.0, 5.0 * 1000.0 * kConcurrency / std::max(serial_rps, 1e-9));
  std::fprintf(stderr,
               "socket: %.2f req/s, p99 %.1f ms (SLO %.1f ms), %lld busy "
               "retries\n",
               socket_rps, socket_p99_ms, socket_slo_ms,
               static_cast<long long>(socket_busy));

  // -- thread-scaling curve for the two engine entry points (full mode).
  struct ScaleRow {
    std::string mode;
    int threads;
    double masks_per_s;
  };
  std::vector<ScaleRow> scale_rows;
  if (!quick) {
    std::vector<int> thread_counts = {1, 2, hw_threads};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());
    std::vector<Tensor> batch(masks.begin(), masks.begin() + kConcurrency);
    const Tensor large = random_mask(2 * cfg.tile, 99);
    for (int threads : thread_counts) {
      runtime::InferenceEngine scaled(cfg, /*seed=*/42,
                                      runtime::EngineOptions{threads});
      auto best_of_3 = [](auto&& fn) {
        fn();  // warm-up
        double best = 1e30;
        for (int i = 0; i < 3; ++i) best = std::min(best, bench::seconds(fn));
        return best;
      };
      scale_rows.push_back(
          {"predict_batch", threads,
           kConcurrency / best_of_3([&] { (void)scaled.predict_batch(batch); })});
      scale_rows.push_back(
          {"predict_large", threads,
           1.0 / best_of_3([&] { (void)scaled.predict_large(large); })});
      std::fprintf(stderr, "measured %d thread(s)\n", threads);
    }
  }

  // With a real pool the batched forward amortizes across workers and the
  // scheduler must deliver >= 2x; on 1-2 cores batching can only break
  // even, so the gate degrades to no-regression — as it does in --quick
  // mode, where shared-runner noise makes a speedup target flaky.
  const double required = (!quick && hw_threads >= 4) ? 2.0 : 0.85;
  const double speedup = scheduled_rps / serial_rps;
  // Tracing must cost <= 5% throughput; --quick loosens to 15% because a
  // 32-request run on a shared runner has that much timer noise untraced.
  const double required_overhead = quick ? 0.85 : 0.95;
  // Socket mode re-runs the same compute behind framing + loopback TCP:
  // half of serial throughput is the floor, and the closed-loop p99 must
  // meet the SLO.
  const double required_socket_ratio = 0.5;
  const double socket_ratio = socket_rps / std::max(serial_rps, 1e-9);
  const bool socket_pass = socket_identical &&
                           socket_ratio >= required_socket_ratio &&
                           socket_p99_ms <= socket_slo_ms;
  const bool pass = identical && speedup >= required &&
                    tracing_overhead >= required_overhead && socket_pass;

  std::string json;
  char buf[512];
  auto emit = [&json, &buf](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    json += buf;
  };
  emit("{\n");
  emit("  \"bench\": \"serve_throughput\",\n");
  emit("  \"quick\": %s,\n", quick ? "true" : "false");
  emit("  \"tile_px\": %lld,\n", static_cast<long long>(cfg.tile));
  emit("  \"requests\": %zu,\n", requests);
  emit("  \"concurrency\": %d,\n", kConcurrency);
  emit("  \"hardware_threads\": %d,\n", hw_threads);
  emit("  \"max_batch\": %d,\n", sched_opts.max_batch);
  emit("  \"max_delay_us\": %lld,\n",
       static_cast<long long>(sched_opts.max_delay_us));
  emit("  \"serial_reqs_per_s\": %.3f,\n", serial_rps);
  emit("  \"scheduled_reqs_per_s\": %.3f,\n", scheduled_rps);
  emit("  \"scheduled_speedup\": %.3f,\n", speedup);
  emit("  \"scheduled_batches\": %lld,\n",
       static_cast<long long>(sched.batches));
  emit("  \"scheduled_avg_batch\": %.3f,\n",
       sched.batches > 0 ? static_cast<double>(sched.batched_requests) /
                               static_cast<double>(sched.batches)
                         : 0.0);
  emit("  \"max_queue_depth\": %lld,\n",
       static_cast<long long>(sched.max_queue_depth));
  emit("  \"latency_ms_p50\": %.3f,\n", sched.latency_ms_p50);
  emit("  \"latency_ms_p99\": %.3f,\n", sched.latency_ms_p99);
  emit("  \"socket_reqs_per_s\": %.3f,\n", socket_rps);
  emit("  \"socket_ratio_vs_serial\": %.3f,\n", socket_ratio);
  emit("  \"required_socket_ratio\": %.2f,\n", required_socket_ratio);
  emit("  \"socket_p99_ms\": %.3f,\n", socket_p99_ms);
  emit("  \"socket_slo_ms\": %.3f,\n", socket_slo_ms);
  emit("  \"socket_busy_retries\": %lld,\n",
       static_cast<long long>(socket_busy));
  emit("  \"socket_bitwise_identical\": %s,\n",
       socket_identical ? "true" : "false");
  emit("  \"traced_reqs_per_s\": %.3f,\n", traced_rps);
  emit("  \"trace_dropped_events\": %llu,\n",
       static_cast<unsigned long long>(trace_dropped));
  emit("  \"tracing_overhead\": %.3f,\n", tracing_overhead);
  emit("  \"required_tracing_overhead\": %.2f,\n", required_overhead);
  emit("  \"bitwise_identical\": %s,\n", identical ? "true" : "false");
  emit("  \"required_speedup\": %.2f,\n", required);
  emit("  \"pass\": %s,\n", pass ? "true" : "false");
  emit("  \"stage_breakdown\": [\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageRow& s = stages[i];
    emit("    {\"stage\": \"%s\", \"count\": %lld, \"p50_ms\": %.3f, "
         "\"p99_ms\": %.3f, \"total_ms\": %.1f}%s\n",
         s.name.c_str(), static_cast<long long>(s.count), s.p50_ms, s.p99_ms,
         s.total_ms, i + 1 < stages.size() ? "," : "");
  }
  emit("  ],\n");
  emit("  \"thread_scaling\": [\n");
  for (size_t i = 0; i < scale_rows.size(); ++i) {
    const ScaleRow& r = scale_rows[i];
    emit("    {\"mode\": \"%s\", \"threads\": %d, \"masks_per_s\": %.3f}%s\n",
         r.mode.c_str(), r.threads, r.masks_per_s,
         i + 1 < scale_rows.size() ? "," : "");
  }
  emit("  ]\n}\n");

  std::fputs(json.c_str(), stdout);
  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote BENCH_serve.json\n");
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: scheduled %.2fx vs serial (required >= %.2fx at %d "
                 "hardware threads), traced %.3fx of untraced (required >= "
                 "%.2fx), socket %.2fx vs serial (required >= %.2fx) p99 "
                 "%.1f ms (SLO %.1f ms)%s%s\n",
                 speedup, required, hw_threads, tracing_overhead,
                 required_overhead, socket_ratio, required_socket_ratio,
                 socket_p99_ms, socket_slo_ms,
                 identical ? "" : "; results differ",
                 socket_identical ? "" : "; socket results differ");
    return 1;
  }
  return 0;
}
