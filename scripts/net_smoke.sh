#!/usr/bin/env bash
# End-to-end smoke of the socket serving front end.
#
# Trains a tiny model, renders reference contours through doinn_serve's
# manifest mode, then starts `doinn_serve --listen 0` and drives it with
# the doinn_client load generator over loopback. Asserts:
#
#   - the server comes up, serves the load, and drains cleanly on a
#     SHUTDOWN frame (nonzero server exit fails the script);
#   - every socket-mode contour is byte-identical to the manifest-mode
#     output for the same mask (the transport-independence contract);
#   - the Chrome trace written on shutdown validates and contains the
#     full serving-path span taxonomy (serve.ingest, sched.queue_wait,
#     sched.dispatch, serve.wait, serve.write);
#   - a two-model, two-replica `--models` registry server routes socket
#     (protocol-v2 model field) and manifest (`model:` prefix) traffic to
#     the right model, byte-identical to per-model single-engine runs.
#
# Usage: scripts/net_smoke.sh [build-dir]   (defaults to ./build)
# Set DOINN_SMOKE_ARTIFACTS=<dir> to copy trace/metrics JSON and server
# logs there when the smoke fails (CI uploads that directory).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
for bin in doinn_cli doinn_serve doinn_client; do
  if [ ! -x "$BUILD/$bin" ]; then
    echo "net_smoke: $BUILD/$bin not built" >&2
    exit 2
  fi
done

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  status=$?
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ] && [ -n "${DOINN_SMOKE_ARTIFACTS:-}" ]; then
    mkdir -p "$DOINN_SMOKE_ARTIFACTS"
    cp "$WORK"/*.json "$WORK"/*.log "$DOINN_SMOKE_ARTIFACTS"/ 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== training a tiny model =="
"$BUILD/doinn_cli" train --kind via --tile 64 --count 2 --epochs 1 \
  --out "$WORK/weights.bin"

echo "== generating masks =="
for i in 1 2 3 4; do
  "$BUILD/doinn_cli" generate --kind via --tile 64 --seed "$i" \
    --out "$WORK/mask$i.pgm"
done

echo "== manifest-mode reference contours =="
for i in 1 2 3 4; do
  echo "$WORK/mask$i.pgm $WORK/ref$i.pgm"
done > "$WORK/ref_manifest.txt"
"$BUILD/doinn_serve" --weights "$WORK/weights.bin" \
  --manifest "$WORK/ref_manifest.txt" --once

echo "== starting doinn_serve --listen =="
"$BUILD/doinn_serve" --weights "$WORK/weights.bin" --listen 0 \
  --adaptive-delay --trace-out "$WORK/trace.json" \
  --metrics-out "$WORK/metrics.json" > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' \
    "$WORK/server.log" | head -n 1)
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "net_smoke: server exited before listening" >&2
    cat "$WORK/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "net_smoke: server never reported its port" >&2
  cat "$WORK/server.log" >&2
  exit 1
fi
echo "server is listening on port $PORT"

echo "== driving the socket load =="
for i in 1 2 3 4; do
  echo "$WORK/mask$i.pgm $WORK/sock$i.pgm"
done > "$WORK/sock_manifest.txt"
"$BUILD/doinn_client" --connect "127.0.0.1:$PORT" \
  --manifest "$WORK/sock_manifest.txt" --concurrency 2 --repeat 2

echo "== draining via a SHUTDOWN frame =="
"$BUILD/doinn_client" --connect "127.0.0.1:$PORT" --shutdown
wait "$SERVER_PID"
SERVER_PID=""
cat "$WORK/server.log"

echo "== checking socket vs manifest byte identity =="
for i in 1 2 3 4; do
  cmp "$WORK/ref$i.pgm" "$WORK/sock$i.pgm" || {
    echo "net_smoke: socket contour $i differs from manifest mode" >&2
    exit 1
  }
done
echo "all contours byte-identical"

echo "== validating the trace =="
python3 scripts/trace_summary.py "$WORK/trace.json" --require \
  serve.ingest sched.queue_wait sched.dispatch serve.wait serve.write

echo "== two-model registry end to end =="
# A second model with different weights, then a pool server with two
# replicas of each. Socket traffic routes by the protocol-v2 model field,
# manifest traffic by the `model:` line prefix; both must match the
# per-model single-engine references byte for byte.
"$BUILD/doinn_cli" train --kind via --tile 64 --count 2 --epochs 2 \
  --out "$WORK/weights_b.bin"

for i in 1 2 3 4; do
  echo "$WORK/mask$i.pgm $WORK/ref_b$i.pgm"
done > "$WORK/ref_b_manifest.txt"
"$BUILD/doinn_serve" --weights "$WORK/weights_b.bin" \
  --manifest "$WORK/ref_b_manifest.txt" --once

cat > "$WORK/registry.txt" <<EOF
# name  checkpoint          precision  replicas
alpha   $WORK/weights.bin   fp32       2
beta    $WORK/weights_b.bin fp32       2
EOF

"$BUILD/doinn_serve" --models "$WORK/registry.txt" --listen 0 \
  --metrics-out "$WORK/pool_metrics.json" \
  > "$WORK/pool_server.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' \
    "$WORK/pool_server.log" | head -n 1)
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "net_smoke: pool server exited before listening" >&2
    cat "$WORK/pool_server.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "net_smoke: pool server never reported its port" >&2
  cat "$WORK/pool_server.log" >&2
  exit 1
fi
echo "pool server is listening on port $PORT"

# Interleaved per-model routing in one manifest (model: prefix), plus
# unprefixed lines that must land on the default model (alpha).
for i in 1 2 3 4; do
  echo "model:alpha $WORK/mask$i.pgm $WORK/pool_a$i.pgm"
  echo "model:beta $WORK/mask$i.pgm $WORK/pool_b$i.pgm"
  echo "$WORK/mask$i.pgm $WORK/pool_d$i.pgm"
done > "$WORK/pool_manifest.txt"
"$BUILD/doinn_client" --connect "127.0.0.1:$PORT" \
  --manifest "$WORK/pool_manifest.txt" --concurrency 3

# --model flag routing of a whole run to one model.
for i in 1 2; do
  echo "$WORK/mask$i.pgm $WORK/flag_b$i.pgm"
done > "$WORK/flag_manifest.txt"
"$BUILD/doinn_client" --connect "127.0.0.1:$PORT" --model beta \
  --manifest "$WORK/flag_manifest.txt"

"$BUILD/doinn_client" --connect "127.0.0.1:$PORT" --shutdown
wait "$SERVER_PID"
SERVER_PID=""
cat "$WORK/pool_server.log"

echo "== checking two-model routing byte identity =="
for i in 1 2 3 4; do
  cmp "$WORK/ref$i.pgm" "$WORK/pool_a$i.pgm" || {
    echo "net_smoke: pool model alpha contour $i differs" >&2
    exit 1
  }
  cmp "$WORK/ref_b$i.pgm" "$WORK/pool_b$i.pgm" || {
    echo "net_smoke: pool model beta contour $i differs" >&2
    exit 1
  }
  cmp "$WORK/ref$i.pgm" "$WORK/pool_d$i.pgm" || {
    echo "net_smoke: pool default-model contour $i differs" >&2
    exit 1
  }
done
for i in 1 2; do
  cmp "$WORK/ref_b$i.pgm" "$WORK/flag_b$i.pgm" || {
    echo "net_smoke: --model beta contour $i differs" >&2
    exit 1
  }
done
echo "two-model routing byte-identical"

echo "net_smoke: PASS"
