#!/usr/bin/env bash
# Checks that repository paths referenced from the documentation resolve.
#
# Extracts path-like tokens (src/..., apps/..., bench/..., tests/...,
# scripts/..., docs/..., examples/..., plus top-level *.md / *.json /
# CMakeLists.txt mentions) from the given markdown files and fails listing
# every token that doesn't exist relative to the repo root. Keeps
# docs/ARCHITECTURE.md honest as the tree is refactored.
#
# Usage: scripts/check_doc_refs.sh [file.md ...]
#   (defaults to docs/ARCHITECTURE.md README.md)
set -u
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(docs/ARCHITECTURE.md README.md)
fi

status=0
for doc in "${files[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "MISSING DOC: $doc"
    status=1
    continue
  fi
  # Path-like tokens: a known top-level directory followed by /, then a
  # path ending in a file extension; directory references ending in '/'
  # are checked as directories.
  refs=$(grep -oE '(src|apps|bench|tests|scripts|docs|examples)/[A-Za-z0-9_.{},*/-]*' "$doc" \
         | sed 's/[).,:;]*$//' | sort -u)
  for ref in $refs; do
    case "$ref" in
      *\**|*\{*) continue ;;  # glob / brace shorthand ("gemm.{h,cpp}") — prose, not a path
      */) [ -d "$ref" ] || { echo "$doc: broken reference: $ref"; status=1; } ;;
      *)  [ -e "$ref" ] || { echo "$doc: broken reference: $ref"; status=1; } ;;
    esac
  done
done

if [ "$status" -eq 0 ]; then
  echo "doc references OK (${files[*]})"
fi
exit "$status"
