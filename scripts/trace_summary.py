#!/usr/bin/env python3
"""Validate and summarize a DOINN Chrome Trace Event Format file.

    python3 scripts/trace_summary.py trace.json [--require name ...]

Checks the structural invariants the trace recorder promises
(src/runtime/trace.h), then prints a per-stage latency table:

  - the document is a JSON object with a "traceEvents" array;
  - every event carries the keys its phase requires (name/cat/ph/pid/tid/ts
    for spans and instants, plus dur for "X", id for "b"/"e", s for "i");
  - complete spans ("X") nest properly per (pid, tid): spans on one thread
    form a stack — a span that overlaps another without containing it (or
    being contained by it) means the recorder emitted garbage;
  - async spans pair up: every "b" has exactly one "e" with the same
    (cat, id, name) and a timestamp >= the begin's.

--require asserts that at least one span (complete or async) with each
given name is present — CI uses it to pin the serving-path span taxonomy
(serve.ingest, sched.queue_wait, sched.dispatch, serve.wait, serve.write),
so silently losing a stage fails the build rather than shrinking the
table.

Exit status: 0 valid, 1 malformed trace, 2 usage error. CI pipes the
serve-smoke bench trace and the net-smoke socket trace through this, so a
recorder regression that still produces superficially-loadable JSON fails
the build.
"""

import json
import sys

# Timestamps are microseconds with ns precision (%.3f); two adjacent spans
# may round to boundaries this far apart and still be well-nested.
EPS_US = 0.002

REQUIRED_BY_PHASE = {
    "X": ("name", "cat", "ph", "pid", "tid", "ts", "dur"),
    "b": ("name", "cat", "ph", "pid", "tid", "ts", "id"),
    "e": ("name", "cat", "ph", "pid", "tid", "ts", "id"),
    "i": ("name", "cat", "ph", "pid", "tid", "ts", "s"),
    "M": ("name", "ph", "pid"),
}


def fail(msg):
    print(f"trace_summary: MALFORMED: {msg}", file=sys.stderr)
    sys.exit(1)


def check_required_keys(events):
    for n, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            fail(f"event {n} has no ph")
        required = REQUIRED_BY_PHASE.get(ph)
        if required is None:
            fail(f"event {n} has unknown ph {ph!r}")
        missing = [k for k in required if k not in ev]
        if missing:
            fail(f"event {n} (ph {ph!r} {ev.get('name')!r}) missing {missing}")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {n} ({ev['name']!r}) has negative dur {ev['dur']}")


def check_span_nesting(events):
    """X-spans on one thread must form a stack when sorted by begin time."""
    by_tid = {}
    for ev in events:
        if ev["ph"] == "X":
            by_tid.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), spans in sorted(by_tid.items()):
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (name, end_ts) of currently-open enclosing spans
        for ev in spans:
            begin, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and begin >= stack[-1][1] - EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + EPS_US:
                fail(
                    f"tid {tid}: span {ev['name']!r} [{begin:.3f},"
                    f" {end:.3f}] overlaps enclosing {stack[-1][0]!r}"
                    f" ending at {stack[-1][1]:.3f}"
                )
            stack.append((ev["name"], end))


def check_async_pairing(events):
    begins = {}
    for n, ev in enumerate(events):
        if ev["ph"] not in ("b", "e"):
            continue
        key = (ev["cat"], ev["id"], ev["name"])
        if ev["ph"] == "b":
            if key in begins:
                fail(f"duplicate async begin for {key}")
            begins[key] = ev
        else:
            begin = begins.pop(key, None)
            if begin is None:
                fail(f"event {n}: async end without begin for {key}")
            if ev["ts"] < begin["ts"] - EPS_US:
                fail(f"async span {key} ends before it begins")
    if begins:
        fail(f"{len(begins)} async begin(s) without an end, e.g. "
             f"{next(iter(begins))}")


def percentile(sorted_vals, q):
    """Nearest-rank percentile, matching src/runtime/percentile.h."""
    import math

    rank = max(0, math.ceil(q * len(sorted_vals)) - 1)
    return sorted_vals[min(rank, len(sorted_vals) - 1)]


def summarize(events):
    durs_ms = {}
    for ev in events:
        if ev["ph"] == "X":
            durs_ms.setdefault(ev["name"], []).append(ev["dur"] / 1e3)
    # Async spans: duration = matching end ts - begin ts.
    begins = {}
    for ev in events:
        if ev["ph"] == "b":
            begins[(ev["cat"], ev["id"], ev["name"])] = ev["ts"]
        elif ev["ph"] == "e":
            ts0 = begins.get((ev["cat"], ev["id"], ev["name"]))
            if ts0 is not None:
                durs_ms.setdefault(ev["name"], []).append((ev["ts"] - ts0) / 1e3)

    rows = []
    for name, durs in durs_ms.items():
        durs.sort()
        rows.append((sum(durs), name, len(durs),
                     percentile(durs, 0.50), percentile(durs, 0.99)))
    rows.sort(reverse=True)
    print(f"{'stage':<28}{'count':>8}{'p50 ms':>12}{'p99 ms':>12}"
          f"{'total ms':>12}")
    for total, name, count, p50, p99 in rows:
        print(f"{name:<28}{count:>8}{p50:>12.3f}{p99:>12.3f}{total:>12.1f}")


def main():
    argv = sys.argv[1:]
    required_spans = []
    if "--require" in argv:
        split = argv.index("--require")
        required_spans = argv[split + 1:]
        argv = argv[:split]
        if not required_spans:
            print("trace_summary: --require needs span name(s)",
                  file=sys.stderr)
            return 2
    if len(argv) != 1:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_summary: cannot read {path}: {e}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail('document is not an object with a "traceEvents" array')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail('"traceEvents" is not an array')

    check_required_keys(events)
    check_span_nesting(events)
    check_async_pairing(events)

    span_names = {e["name"] for e in events if e["ph"] in ("X", "b")}
    missing = [name for name in required_spans if name not in span_names]
    if missing:
        fail(f"required span(s) absent from the trace: {missing}")

    n_spans = sum(1 for e in events if e["ph"] == "X")
    n_async = sum(1 for e in events if e["ph"] == "b")
    n_instants = sum(1 for e in events if e["ph"] == "i")
    tids = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    print(f"{path}: valid — {n_spans} spans, {n_async} async spans, "
          f"{n_instants} instants across {len(tids)} thread(s)")
    if n_spans or n_async:
        summarize(events)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped through `head`
        sys.exit(0)
